"""Tests for the pluggable fault-model registry (`repro.machine.faults`).

Covers the spec syntax, the registry plugin API, per-model determinism,
the counting contracts against trace events, and — most load-bearing —
the ``bit_flip`` bit-identity contract: the default model must reproduce
the pre-registry injector exactly (results, cache keys, trace bytes).
"""

import json

import pytest

from repro.machine.errors import ErrorInjector, ErrorKind, ErrorModel
from repro.machine.faults import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    BurstInjector,
    FaultModel,
    FaultModelSpec,
    StickyInjector,
    build_injector,
    default_error_model,
    fault_model_names,
    register_fault_model,
    resolve_fault_model,
)
from repro.observability.tracer import InMemoryTracer

ALL_MODELS = ("bit_flip", "burst", "control_flow", "queue_state", "sticky")


class TestSpecParsing:
    def test_bare_name(self):
        spec = FaultModelSpec.parse("burst")
        assert spec.name == "burst"
        assert spec.params == ()

    def test_params_parsed_and_sorted(self):
        spec = FaultModelSpec.parse("burst:p_cluster=0.7,max_len=4")
        assert spec.params == (("max_len", 4.0), ("p_cluster", 0.7))

    def test_canonical_is_order_independent(self):
        a = FaultModelSpec.parse("burst:p_cluster=0.7,max_len=4")
        b = FaultModelSpec.parse("burst:max_len=4,p_cluster=0.7")
        assert a == b
        assert a.canonical() == b.canonical() == "burst:max_len=4,p_cluster=0.7"

    def test_dashes_normalize_to_underscores(self):
        assert FaultModelSpec.parse("control-flow").name == "control_flow"

    def test_whitespace_tolerated(self):
        spec = FaultModelSpec.parse("  burst : max_len=2 ")
        assert spec.name == "burst"
        assert spec.param("max_len", 0) == 2.0

    def test_unknown_model_rejected_with_choices(self):
        with pytest.raises(ValueError, match="bit_flip.*burst"):
            FaultModelSpec.parse("meteor_strike")

    def test_unknown_param_rejected_with_choices(self):
        with pytest.raises(ValueError, match="no parameter 'dwell'"):
            FaultModelSpec.parse("burst:dwell=5")

    def test_mix_params_accepted_by_every_model(self):
        for name in ALL_MODELS:
            spec = FaultModelSpec.parse(f"{name}:p_masked=0.5")
            assert spec.param("p_masked", None) == 0.5

    def test_malformed_param_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultModelSpec.parse("burst:p_cluster")

    def test_unparsable_value_rejected(self):
        with pytest.raises(ValueError, match="unparsable"):
            FaultModelSpec.parse("burst:p_cluster=high")

    def test_coerce_none_is_default(self):
        spec = FaultModelSpec.coerce(None)
        assert spec.is_default
        assert spec.canonical() == DEFAULT_FAULT_MODEL

    def test_coerce_passthrough_and_string(self):
        spec = FaultModelSpec(name="sticky", params=(("dwell", 5.0),))
        assert FaultModelSpec.coerce(spec) is spec
        assert FaultModelSpec.coerce("sticky:dwell=5") == spec

    def test_default_with_params_is_not_default(self):
        assert not FaultModelSpec.parse("bit_flip:p_masked=0.5").is_default

    def test_hashable_for_frozen_specs(self):
        assert len({FaultModelSpec.parse("burst"), FaultModelSpec.parse("burst")}) == 1


class TestRegistry:
    def test_builtins_registered_default_first(self):
        assert fault_model_names() == ALL_MODELS

    def test_refuses_to_shadow_without_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault_model(FaultModel(name="bit_flip", summary="evil"))

    def test_replace_and_custom_registration(self):
        model = FaultModel(
            name="test_custom",
            summary="test-only",
            injector_cls=ErrorInjector,
            mix={"p_data": 1.0, "p_control": 0.0, "p_address": 0.0},
        )
        try:
            register_fault_model(model)
            assert "test_custom" in fault_model_names()
            register_fault_model(model, replace=True)  # no error
            assert resolve_fault_model("test_custom") is model
        finally:
            FAULT_MODELS.pop("test_custom", None)

    def test_rejects_unknown_mix_fields(self):
        with pytest.raises(ValueError, match="unknown mix fields"):
            register_fault_model(
                FaultModel(name="test_bad", summary="x", mix={"p_chaos": 1.0})
            )
        assert "test_bad" not in FAULT_MODELS

    def test_every_builtin_mix_is_a_valid_error_model(self):
        for name in ALL_MODELS:
            model = default_error_model(name, mtbe=100_000)
            assert model.enabled


class TestErrorModelRouting:
    def test_default_is_exactly_the_base_model(self):
        assert default_error_model(None, 512_000) == ErrorModel(mtbe=512_000)
        assert default_error_model("bit_flip", 512_000) == ErrorModel(mtbe=512_000)

    def test_model_mix_applied(self):
        model = default_error_model("control_flow", 512_000)
        assert model.p_control == 0.75

    def test_spec_mix_params_override_model_mix(self):
        model = default_error_model("control_flow:p_masked=0.5", 512_000)
        assert model.p_masked == 0.5
        assert model.p_control == 0.75

    def test_declared_params_routed_to_constructor(self):
        injector = build_injector(
            "burst:p_cluster=0.25,max_len=3", ErrorModel(mtbe=1000), seed=0, core_id=0
        )
        assert isinstance(injector, BurstInjector)
        assert injector.p_cluster == 0.25
        assert injector.max_len == 3

    def test_constructor_validation_still_applies(self):
        with pytest.raises(ValueError, match="p_cluster"):
            build_injector("burst:p_cluster=1.5", ErrorModel(mtbe=1000), 0, 0)
        with pytest.raises(ValueError, match="dwell"):
            build_injector("sticky:dwell=-1", ErrorModel(mtbe=1000), 0, 0)


def _drive(spec: str, instructions=400_000, step=1_000, seed=7, tracer=None):
    model = default_error_model(spec, mtbe=2_000)
    injector = build_injector(spec, model, seed=seed, core_id=2, tracer=tracer)
    events = []
    for _ in range(instructions // step):
        events.extend(injector.advance(step))
    return injector, events


class TestInjectorBehaviour:
    def test_bit_flip_identical_to_raw_injector(self):
        """The registry path constructs exactly the pre-registry process."""
        registry, via_registry = _drive("bit_flip")
        raw = ErrorInjector(ErrorModel(mtbe=2_000), seed=7, core_id=2)
        direct = []
        for _ in range(400):
            direct.extend(raw.advance(1_000))
        assert via_registry == direct
        assert registry.errors_injected == raw.errors_injected
        assert registry.errors_masked == raw.errors_masked
        assert registry.errors_by_kind == raw.errors_by_kind

    @pytest.mark.parametrize("spec", ALL_MODELS + ("burst:p_cluster=0.9,max_len=3",))
    def test_deterministic_per_spec_and_seed(self, spec):
        _, a = _drive(spec)
        _, b = _drive(spec)
        assert a == b

    @pytest.mark.parametrize("spec", ("burst", "control_flow", "queue_state", "sticky"))
    def test_models_differ_from_bit_flip(self, spec):
        _, base = _drive("bit_flip")
        injector, events = _drive(spec)
        assert [(e.kind, e.at_instruction) for e in events] != [
            (e.kind, e.at_instruction) for e in base
        ]

    def test_burst_injects_clusters(self):
        base, _ = _drive("bit_flip")
        burst, _ = _drive("burst:p_cluster=0.9")
        # Same arrival process, but each arrival flips ~10x with p=0.9.
        assert burst.errors_injected > 2 * base.errors_injected

    def test_burst_max_len_one_degenerates_to_bit_flip(self):
        """A 1-flip cluster never draws the continuation roll, so the RNG
        sequence — and therefore the event stream — matches ``bit_flip``."""
        _, base = _drive("bit_flip")
        _, single = _drive("burst:max_len=1")
        assert single == base

    def test_burst_cluster_length_capped(self):
        short, _ = _drive("burst:p_cluster=0.99,max_len=2")
        long, _ = _drive("burst:p_cluster=0.99,max_len=8")
        assert short.errors_injected < long.errors_injected

    def test_control_flow_mix_is_control_heavy(self):
        _, events = _drive("control_flow", instructions=2_000_000)
        control = sum(1 for e in events if e.kind is ErrorKind.CONTROL)
        assert control / len(events) > 0.6

    def test_queue_state_mix_is_address_heavy(self):
        _, events = _drive("queue_state", instructions=2_000_000)
        address = sum(1 for e in events if e.kind is ErrorKind.ADDRESS)
        assert address / len(events) > 0.6

    def test_sticky_repeats_effects_during_dwell(self):
        base, base_events = _drive("bit_flip")
        sticky, events = _drive("sticky:dwell=100000,p_masked=0.0")
        base_unmasked, _ = _drive("bit_flip:p_masked=0.0")
        # Repeats add effects beyond the arrivals; arrival count unchanged
        # at the RNG level, so injected grows strictly past the base's.
        assert sticky.errors_injected > base_unmasked.errors_injected
        assert len(events) > len([e for e in base_events])

    def test_sticky_clears_after_dwell(self):
        injector = StickyInjector(
            ErrorModel(mtbe=100, p_masked=0.0), seed=1, core_id=0, dwell=50
        )
        injector.advance(1_000)
        # run far past the last arrival-free dwell window
        injector._countdown = 1e18  # no further arrivals
        injector.advance(100)
        assert injector._stuck_kind is not None or injector._stuck_until < injector.clock
        injector.advance(10_000)
        assert injector._stuck_kind is None


class TestCountingContracts:
    @pytest.mark.parametrize("spec", ALL_MODELS)
    def test_injected_equals_trace_events(self, spec):
        tracer = InMemoryTracer()
        injector, events = _drive(spec, tracer=tracer)
        traced = tracer.of_kind("error-injected")
        assert len(traced) == injector.errors_injected
        masked = [e for e in traced if e.masked]
        assert len(masked) == injector.errors_masked
        assert len(traced) - len(masked) == len(events)

    def test_default_model_events_carry_no_tag(self):
        tracer = InMemoryTracer()
        _drive("bit_flip", tracer=tracer)
        for event in tracer.of_kind("error-injected"):
            assert event.model is None
            assert "model" not in event.to_dict()

    @pytest.mark.parametrize("spec", ("burst", "control_flow", "queue_state", "sticky"))
    def test_nondefault_events_carry_model_identity(self, spec):
        tracer = InMemoryTracer()
        _drive(spec, tracer=tracer)
        name = spec.partition(":")[0]
        for event in tracer.of_kind("error-injected"):
            assert event.model == name
            assert event.to_dict()["model"] == name

    def test_model_tag_round_trips_through_json(self):
        from repro.observability.events import ErrorInjected, event_from_dict

        event = ErrorInjected(
            core=1, at_instruction=10, effect="data", masked=False, model="burst"
        )
        data = json.loads(json.dumps(event.to_dict()))
        assert event_from_dict(data) == event

    def test_tracing_does_not_perturb_results(self):
        _, untraced = _drive("sticky")
        _, traced = _drive("sticky", tracer=InMemoryTracer())
        assert untraced == traced
