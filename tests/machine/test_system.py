"""System-level tests: build, run, determinism, protections, termination."""

import pytest

from repro.core.config import CommGuardConfig
from repro.machine.errors import ErrorModel
from repro.machine.protection import ProtectionLevel
from repro.machine.system import MulticoreSystem, SystemConfig, run_program
from repro.streamit.builders import pipeline, split_join
from repro.streamit.filters import Identity, IntSink, IntSource
from repro.streamit.graph import StreamGraph
from repro.streamit.program import StreamProgram


def make_program(n=64, rate=2):
    graph = pipeline(
        [
            IntSource("src", list(range(n)), rate=rate),
            Identity("mid", rate=rate),
            IntSink("snk", rate=rate),
        ]
    )
    return StreamProgram.compile(graph)


def make_splitjoin_program(n=64):
    graph = StreamGraph()
    source = graph.add_node(IntSource("src", list(range(n)), rate=1))
    sink = graph.add_node(IntSink("snk", rate=2))
    split_join(graph, source, [Identity("a"), Identity("b")], sink, name="sj")
    return StreamProgram.compile(graph)


ALL_LEVELS = list(ProtectionLevel)


class TestErrorFreeTransparency:
    """DESIGN.md invariant 5: with zero errors, every protection level
    reproduces the data exactly."""

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_pipeline_output_exact(self, level):
        program = make_program()
        result = run_program(program, level, error_model=ErrorModel.error_free())
        assert result.outputs["snk"] == list(range(64))
        assert not result.hung

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_splitjoin_output_exact(self, level):
        program = make_splitjoin_program(16)
        result = run_program(program, level, error_model=ErrorModel.error_free())
        expected = [v for i in range(16) for v in (i, i)]
        assert result.outputs["snk"] == expected

    def test_output_length_matches_expectation(self):
        program = make_program()
        result = run_program(program, ProtectionLevel.ERROR_FREE)
        lengths = program.expected_output_lengths()
        assert len(result.outputs["snk"]) == lengths["snk"]


class TestDeterminism:
    """DESIGN.md invariant 6."""

    def test_same_seed_same_output(self):
        program = make_program(256)
        a = run_program(program, ProtectionLevel.COMMGUARD, mtbe=3_000, seed=5)
        b = run_program(program, ProtectionLevel.COMMGUARD, mtbe=3_000, seed=5)
        assert a.outputs == b.outputs
        assert a.errors_injected == b.errors_injected

    def test_different_seeds_differ(self):
        program = make_program(1024)
        outputs = set()
        for seed in range(4):
            result = run_program(
                program, ProtectionLevel.COMMGUARD, mtbe=1_500, seed=seed
            )
            outputs.add(tuple(result.outputs["snk"]))
        assert len(outputs) > 1


class TestProgressGuarantee:
    """DESIGN.md invariant 2: runs always terminate with full-length output."""

    @pytest.mark.parametrize("seed", range(6))
    def test_commguard_output_length_preserved_under_errors(self, seed):
        program = make_program(256)
        result = run_program(
            program, ProtectionLevel.COMMGUARD, mtbe=1_000, seed=seed
        )
        assert len(result.outputs["snk"]) == 256
        assert not result.hung

    @pytest.mark.parametrize(
        "level", [ProtectionLevel.PPU_ONLY, ProtectionLevel.PPU_RELIABLE_QUEUE]
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_baselines_terminate_even_when_corrupted(self, level, seed):
        program = make_program(256)
        result = run_program(program, level, mtbe=800, seed=seed)
        assert not result.hung
        assert len(result.outputs["snk"]) == 256

    def test_splitjoin_under_heavy_errors_terminates(self):
        program = make_splitjoin_program(128)
        result = run_program(
            program, ProtectionLevel.COMMGUARD, mtbe=500, seed=2
        )
        assert not result.hung
        assert len(result.outputs["snk"]) == 256


class TestBuildValidation:
    def test_error_model_required_for_error_prone_levels(self):
        with pytest.raises(ValueError, match="error model"):
            MulticoreSystem.build(make_program(), ProtectionLevel.COMMGUARD)

    def test_error_free_ignores_model(self):
        system = MulticoreSystem.build(
            make_program(),
            ProtectionLevel.ERROR_FREE,
            error_model=ErrorModel(mtbe=10),
        )
        for core in system.cores:
            assert not core.injector.model.enabled

    def test_custom_system_config(self):
        config = SystemConfig(n_cores=3, frame_stall_cycles=5)
        system = MulticoreSystem.build(
            make_program(), ProtectionLevel.ERROR_FREE, system_config=config
        )
        assert len(system.cores) == 3

    def test_threads_share_core_when_packed(self):
        config = SystemConfig(n_cores=2)
        system = MulticoreSystem.build(
            make_program(), ProtectionLevel.ERROR_FREE, system_config=config
        )
        assert sum(len(core.threads) for core in system.cores) == 3


class TestFrameScaling:
    @pytest.mark.parametrize("frame_scale", [1, 2, 4, 8])
    def test_scaled_frames_error_free_transparent(self, frame_scale):
        program = make_program(64)
        result = run_program(
            program,
            ProtectionLevel.COMMGUARD,
            error_model=ErrorModel.error_free(),
            commguard_config=CommGuardConfig(frame_scale=frame_scale),
        )
        assert result.outputs["snk"] == list(range(64))

    def test_larger_frames_fewer_headers(self):
        program = make_program(64)
        stores = []
        for frame_scale in (1, 4):
            result = run_program(
                program,
                ProtectionLevel.COMMGUARD,
                error_model=ErrorModel.error_free(),
                commguard_config=CommGuardConfig(frame_scale=frame_scale),
            )
            stores.append(result.commguard_stats().header_stores)
        assert stores[1] < stores[0]


class TestRunResultContents:
    def test_counters_populated(self):
        program = make_program()
        result = run_program(program, ProtectionLevel.ERROR_FREE)
        assert set(result.thread_counters) == {"src", "mid", "snk"}
        total = result.aggregate_counters()
        assert total.committed_instructions > 0
        assert total.items_pushed == 128  # src + mid pushes
        assert total.items_popped == 128

    def test_execution_time_includes_stalls_for_guarded(self):
        program = make_program()
        plain = run_program(program, ProtectionLevel.ERROR_FREE)
        guarded = run_program(
            program,
            ProtectionLevel.COMMGUARD,
            error_model=ErrorModel.error_free(),
        )
        assert guarded.execution_time() > plain.execution_time()
        assert (
            guarded.committed_instructions == plain.committed_instructions
        )
