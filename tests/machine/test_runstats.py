"""Tests for run-result aggregation and derived metrics."""

from repro.core.stats import ThreadCounters
from repro.machine.protection import ProtectionLevel
from repro.machine.runstats import RunResult


def make_result():
    result = RunResult()
    a = ThreadCounters()
    a.committed_instructions = 1000
    a.items_popped = 100
    a.memory.loads = 300
    a.memory.stores = 200
    a.commguard.pads = 4
    a.commguard.discarded_items = 6
    a.commguard.header_loads = 3
    a.commguard.header_stores = 2
    a.stall_cycles = 50
    b = ThreadCounters()
    b.committed_instructions = 500
    b.items_popped = 100
    result.thread_counters = {"a": a, "b": b}
    return result


class TestAggregation:
    def test_aggregate_counters(self):
        total = make_result().aggregate_counters()
        assert total.committed_instructions == 1500
        assert total.items_popped == 200

    def test_data_loss_ratio(self):
        assert make_result().data_loss_ratio() == (4 + 6) / 200

    def test_data_loss_zero_when_no_pops(self):
        assert RunResult().data_loss_ratio() == 0.0

    def test_header_memory_ratios(self):
        loads, stores = make_result().header_memory_ratios()
        assert loads == 3 / 303
        assert stores == 2 / 202

    def test_execution_time(self):
        result = make_result()
        expected = 1500 + 50 + (3 + 2) * result.header_transfer_cycles
        assert result.execution_time() == expected

    def test_subop_ratios_keys(self):
        ratios = make_result().subop_ratios()
        assert set(ratios) == {"fsm_counter", "ecc", "header_bit", "total"}

    def test_pad_discard_events(self):
        result = make_result()
        result.thread_counters["a"].commguard.pad_events = 2
        result.thread_counters["a"].commguard.discard_events = 1
        assert result.pad_discard_events() == (2, 1)

    def test_completed_flag(self):
        result = make_result()
        assert result.completed()
        result.hung = True
        assert not result.completed()


class TestProtectionEnum:
    def test_flags(self):
        assert ProtectionLevel.COMMGUARD.uses_commguard
        assert not ProtectionLevel.PPU_ONLY.uses_commguard
        assert ProtectionLevel.PPU_ONLY.queue_pointers_corruptible
        assert not ProtectionLevel.PPU_RELIABLE_QUEUE.queue_pointers_corruptible
        assert not ProtectionLevel.ERROR_FREE.injects_errors
        assert ProtectionLevel.COMMGUARD.injects_errors
