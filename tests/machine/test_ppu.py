"""Tests for the PPU execution-guarantee model."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.machine.ppu import PPUModel


class TestClamping:
    def test_within_bound_unchanged(self):
        ppu = PPUModel(max_count_perturbation=4)
        assert ppu.clamp_count_delta(3, rate=10) == 3
        assert ppu.clamp_count_delta(-2, rate=10) == -2

    def test_clamps_to_bound(self):
        ppu = PPUModel(max_count_perturbation=4)
        assert ppu.clamp_count_delta(100, rate=10) == 4
        assert ppu.clamp_count_delta(-100, rate=10) == -4

    def test_never_unpops_more_than_rate(self):
        ppu = PPUModel(max_count_perturbation=8)
        assert ppu.clamp_count_delta(-8, rate=2) == -2

    def test_rate_one_ports_still_perturbable(self):
        ppu = PPUModel(max_count_perturbation=8)
        assert ppu.clamp_count_delta(5, rate=1) == 1

    @given(
        st.integers(-1000, 1000),
        st.integers(1, 500),
        st.integers(1, 16),
    )
    def test_clamp_properties(self, delta, rate, bound):
        ppu = PPUModel(max_count_perturbation=bound)
        clamped = ppu.clamp_count_delta(delta, rate)
        assert -rate <= clamped
        assert abs(clamped) <= min(bound, max(1, rate))
        if delta:
            assert clamped * delta >= 0  # sign preserved (or zero)


class TestDrawing:
    def test_draw_is_bounded_and_nonzero_magnitude(self):
        ppu = PPUModel(max_count_perturbation=3)
        rng = random.Random(7)
        for _ in range(200):
            delta = ppu.draw_count_delta(rng, rate=8)
            assert -8 <= delta <= 3
            assert abs(delta) >= 1 or delta == 0

    def test_draw_produces_both_signs(self):
        ppu = PPUModel()
        rng = random.Random(11)
        deltas = {ppu.draw_count_delta(rng, rate=4) for _ in range(100)}
        assert any(d > 0 for d in deltas)
        assert any(d < 0 for d in deltas)

    def test_garbage_word_is_32_bits(self):
        rng = random.Random(3)
        for _ in range(100):
            word = PPUModel.garbage_word(rng)
            assert 0 <= word < (1 << 32)
