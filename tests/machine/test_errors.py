"""Tests for the error model and per-core injectors (Section 6)."""

import pytest

from repro.machine.errors import ErrorInjector, ErrorKind, ErrorModel
from repro.observability.tracer import InMemoryTracer


class TestErrorModel:
    def test_error_free_factory(self):
        model = ErrorModel.error_free()
        assert not model.enabled

    def test_error_free_invariants(self):
        model = ErrorModel.error_free()
        assert model.mtbe is None
        # The mix fields keep their calibrated defaults even when disabled,
        # so an error-free model can be re-armed by replacing just mtbe.
        assert model.p_masked == 0.80
        assert model.p_data + model.p_control + model.p_address == 1.0

    @pytest.mark.parametrize("mtbe", [0, -1, -512_000])
    def test_rejects_nonpositive_mtbe(self, mtbe):
        with pytest.raises(ValueError, match="mtbe must be positive"):
            ErrorModel(mtbe=mtbe)

    @pytest.mark.parametrize("p_masked", [1.0, 1.5, -0.01])
    def test_rejects_bad_masking(self, p_masked):
        with pytest.raises(ValueError, match="p_masked"):
            ErrorModel(mtbe=1000, p_masked=p_masked)

    def test_accepts_boundary_masking(self):
        assert ErrorModel(mtbe=1000, p_masked=0.0).p_masked == 0.0
        assert ErrorModel(mtbe=1000, p_masked=0.999).p_masked == 0.999

    def test_rejects_unnormalized_mix(self):
        with pytest.raises(ValueError, match="sum to"):
            ErrorModel(mtbe=1000, p_data=0.5, p_control=0.5, p_address=0.5)

    def test_mix_sum_tolerates_float_rounding(self):
        # 0.1+0.2+0.7 != 1.0 exactly in binary; must still validate.
        model = ErrorModel(mtbe=1000, p_data=0.1, p_control=0.2, p_address=0.7)
        assert model.enabled


class TestInjector:
    def test_error_free_never_fires(self):
        injector = ErrorInjector(ErrorModel.error_free(), seed=0, core_id=0)
        assert injector.advance(10_000_000) == []
        assert injector.errors_injected == 0

    def test_mean_rate_matches_mtbe(self):
        injector = ErrorInjector(ErrorModel(mtbe=1000, p_masked=0.0), seed=1, core_id=0)
        injector.advance(1_000_000)
        assert 850 <= injector.errors_injected <= 1150

    def test_masking_fraction(self):
        model = ErrorModel(mtbe=500, p_masked=0.8)
        injector = ErrorInjector(model, seed=2, core_id=0)
        events = injector.advance(1_000_000)
        masked_fraction = injector.errors_masked / injector.errors_injected
        assert 0.75 <= masked_fraction <= 0.85
        assert len(events) == injector.errors_injected - injector.errors_masked

    def test_kind_mix(self):
        model = ErrorModel(mtbe=200, p_masked=0.0)
        injector = ErrorInjector(model, seed=3, core_id=0)
        events = injector.advance(2_000_000)
        counts = {kind: 0 for kind in ErrorKind}
        for event in events:
            counts[event.kind] += 1
        total = len(events)
        assert abs(counts[ErrorKind.DATA] / total - 0.60) < 0.05
        assert abs(counts[ErrorKind.CONTROL] / total - 0.25) < 0.05
        assert abs(counts[ErrorKind.ADDRESS] / total - 0.15) < 0.05

    def test_deterministic_per_seed(self):
        model = ErrorModel(mtbe=777)
        a = ErrorInjector(model, seed=9, core_id=4)
        b = ErrorInjector(model, seed=9, core_id=4)
        ea = [(e.kind, e.at_instruction) for e in a.advance(100_000)]
        eb = [(e.kind, e.at_instruction) for e in b.advance(100_000)]
        assert ea == eb

    def test_independent_per_core(self):
        """Each core has its own stream (Section 6): different sequences."""
        model = ErrorModel(mtbe=500)
        a = ErrorInjector(model, seed=9, core_id=0)
        b = ErrorInjector(model, seed=9, core_id=1)
        ea = [e.at_instruction for e in a.advance(200_000)]
        eb = [e.at_instruction for e in b.advance(200_000)]
        assert ea != eb

    def test_clock_accumulates(self):
        injector = ErrorInjector(ErrorModel(mtbe=100), seed=0, core_id=0)
        injector.advance(30)
        injector.advance(70)
        assert injector.clock == 100

    def test_rejects_negative_advance(self):
        injector = ErrorInjector(ErrorModel(mtbe=100), seed=0, core_id=0)
        with pytest.raises(ValueError):
            injector.advance(-1)

    def test_events_tagged_with_clock(self):
        injector = ErrorInjector(ErrorModel(mtbe=50, p_masked=0.0), seed=5, core_id=0)
        events = injector.advance(500)
        for event in events:
            assert event.at_instruction == injector.clock

    def test_expovariate_stream_deterministic(self):
        """The gap sequence is a pure function of (seed, core) — the
        foundation of per-seed reproducibility and cache validity."""
        model = ErrorModel(mtbe=1234)
        a = ErrorInjector(model, seed=6, core_id=3)
        b = ErrorInjector(model, seed=6, core_id=3)
        assert a._countdown == b._countdown  # the constructor's first draw
        assert [a._draw_gap() for _ in range(5)] == [
            b._draw_gap() for _ in range(5)
        ]
        # a different seed or core yields a different stream
        c = ErrorInjector(model, seed=7, core_id=3)
        d = ErrorInjector(model, seed=6, core_id=4)
        assert len({a._countdown, c._countdown, d._countdown}) == 3

    def test_error_free_consumes_no_rng(self):
        injector = ErrorInjector(ErrorModel.error_free(), seed=0, core_id=0)
        state_before = injector.rng.getstate()
        injector.advance(1_000_000)
        assert injector.rng.getstate() == state_before

    def test_advance_zero_is_a_noop(self):
        injector = ErrorInjector(ErrorModel(mtbe=100), seed=0, core_id=0)
        assert injector.advance(0) == []
        assert injector.clock == 0

    def test_counters_partition_injections(self):
        injector = ErrorInjector(ErrorModel(mtbe=300), seed=11, core_id=1)
        events = injector.advance(500_000)
        effective = sum(injector.errors_by_kind.values())
        assert injector.errors_masked + effective == injector.errors_injected
        assert len(events) == effective


class TestInjectorTracing:
    """Injection-count contracts against `ErrorInjected` trace events."""

    def test_every_injection_traced_masked_included(self):
        tracer = InMemoryTracer()
        injector = ErrorInjector(
            ErrorModel(mtbe=400), seed=4, core_id=6, tracer=tracer
        )
        events = injector.advance(600_000)
        traced = tracer.of_kind("error-injected")
        assert len(traced) == injector.errors_injected
        masked = [e for e in traced if e.masked]
        unmasked = [e for e in traced if not e.masked]
        assert len(masked) == injector.errors_masked
        assert len(unmasked) == len(events)
        assert all(e.effect is None for e in masked)
        assert all(e.core == 6 for e in traced)

    def test_traced_effects_match_event_kinds(self):
        tracer = InMemoryTracer()
        injector = ErrorInjector(
            ErrorModel(mtbe=200, p_masked=0.0), seed=8, core_id=0, tracer=tracer
        )
        events = injector.advance(100_000)
        traced = tracer.of_kind("error-injected")
        assert [e.effect for e in traced] == [e.kind.value for e in events]

    def test_tracing_consumes_no_rng(self):
        untraced = ErrorInjector(ErrorModel(mtbe=250), seed=3, core_id=2)
        traced = ErrorInjector(
            ErrorModel(mtbe=250), seed=3, core_id=2, tracer=InMemoryTracer()
        )
        assert untraced.advance(400_000) == traced.advance(400_000)
