"""Tests for the error model and per-core injectors (Section 6)."""

import pytest

from repro.machine.errors import ErrorInjector, ErrorKind, ErrorModel


class TestErrorModel:
    def test_error_free_factory(self):
        model = ErrorModel.error_free()
        assert not model.enabled

    def test_rejects_nonpositive_mtbe(self):
        with pytest.raises(ValueError):
            ErrorModel(mtbe=0)

    def test_rejects_bad_masking(self):
        with pytest.raises(ValueError):
            ErrorModel(mtbe=1000, p_masked=1.0)

    def test_rejects_unnormalized_mix(self):
        with pytest.raises(ValueError):
            ErrorModel(mtbe=1000, p_data=0.5, p_control=0.5, p_address=0.5)


class TestInjector:
    def test_error_free_never_fires(self):
        injector = ErrorInjector(ErrorModel.error_free(), seed=0, core_id=0)
        assert injector.advance(10_000_000) == []
        assert injector.errors_injected == 0

    def test_mean_rate_matches_mtbe(self):
        injector = ErrorInjector(ErrorModel(mtbe=1000, p_masked=0.0), seed=1, core_id=0)
        injector.advance(1_000_000)
        assert 850 <= injector.errors_injected <= 1150

    def test_masking_fraction(self):
        model = ErrorModel(mtbe=500, p_masked=0.8)
        injector = ErrorInjector(model, seed=2, core_id=0)
        events = injector.advance(1_000_000)
        masked_fraction = injector.errors_masked / injector.errors_injected
        assert 0.75 <= masked_fraction <= 0.85
        assert len(events) == injector.errors_injected - injector.errors_masked

    def test_kind_mix(self):
        model = ErrorModel(mtbe=200, p_masked=0.0)
        injector = ErrorInjector(model, seed=3, core_id=0)
        events = injector.advance(2_000_000)
        counts = {kind: 0 for kind in ErrorKind}
        for event in events:
            counts[event.kind] += 1
        total = len(events)
        assert abs(counts[ErrorKind.DATA] / total - 0.60) < 0.05
        assert abs(counts[ErrorKind.CONTROL] / total - 0.25) < 0.05
        assert abs(counts[ErrorKind.ADDRESS] / total - 0.15) < 0.05

    def test_deterministic_per_seed(self):
        model = ErrorModel(mtbe=777)
        a = ErrorInjector(model, seed=9, core_id=4)
        b = ErrorInjector(model, seed=9, core_id=4)
        ea = [(e.kind, e.at_instruction) for e in a.advance(100_000)]
        eb = [(e.kind, e.at_instruction) for e in b.advance(100_000)]
        assert ea == eb

    def test_independent_per_core(self):
        """Each core has its own stream (Section 6): different sequences."""
        model = ErrorModel(mtbe=500)
        a = ErrorInjector(model, seed=9, core_id=0)
        b = ErrorInjector(model, seed=9, core_id=1)
        ea = [e.at_instruction for e in a.advance(200_000)]
        eb = [e.at_instruction for e in b.advance(200_000)]
        assert ea != eb

    def test_clock_accumulates(self):
        injector = ErrorInjector(ErrorModel(mtbe=100), seed=0, core_id=0)
        injector.advance(30)
        injector.advance(70)
        assert injector.clock == 100

    def test_rejects_negative_advance(self):
        injector = ErrorInjector(ErrorModel(mtbe=100), seed=0, core_id=0)
        with pytest.raises(ValueError):
            injector.advance(-1)

    def test_events_tagged_with_clock(self):
        injector = ErrorInjector(ErrorModel(mtbe=50, p_masked=0.0), seed=5, core_id=0)
        events = injector.advance(500)
        for event in events:
            assert event.at_instruction == injector.clock
