"""Tests for queue-occupancy high-water tracking (Section 5.1 sizing)."""

from repro.core.header import item_unit
from repro.core.queue_manager import GuardedQueue, QueueGeometry
from repro.core.stats import CommGuardStats
from repro.machine.protection import ProtectionLevel
from repro.machine.queues import ReliableQueue, SoftwareQueue
from repro.machine.system import run_program
from repro.streamit.builders import pipeline
from repro.streamit.filters import Identity, IntSink, IntSource
from repro.streamit.program import StreamProgram


class TestQueuePeaks:
    def test_guarded_queue_tracks_peak(self):
        queue, stats = GuardedQueue(0, QueueGeometry(4, 64)), CommGuardStats()
        for i in range(10):
            queue.push_unit(item_unit(i), stats)
        for _ in range(10):
            queue.pop_unit(stats)
        assert queue.peak_units == 10
        queue.push_unit(item_unit(0), stats)
        assert queue.peak_units == 10  # peak persists

    def test_reliable_queue_tracks_peak(self):
        queue = ReliableQueue(32)
        for i in range(7):
            queue.push(i)
        queue.pop()
        assert queue.peak_occupancy == 7

    def test_software_queue_tracks_peak(self):
        queue = SoftwareQueue(16)
        for i in range(5):
            queue.push(i)
        assert queue.peak_occupancy == 5

    def test_fresh_queue_peak_zero(self):
        assert ReliableQueue(4).peak_occupancy == 0


class TestRunResultPeaks:
    def make_program(self):
        graph = pipeline(
            [
                IntSource("src", list(range(64)), rate=2),
                Identity("mid", rate=2),
                IntSink("snk", rate=2),
            ]
        )
        return StreamProgram.compile(graph)

    def test_peaks_collected_for_every_edge(self):
        program = self.make_program()
        for level in (ProtectionLevel.ERROR_FREE, ProtectionLevel.COMMGUARD):
            result = run_program(program, level, mtbe=None)
            assert set(result.queue_peaks) == {0, 1}
            assert all(v > 0 for v in result.queue_peaks.values())

    def test_buffer_requirement_sums_peaks(self):
        program = self.make_program()
        result = run_program(program, ProtectionLevel.ERROR_FREE)
        assert result.buffer_requirement_words() == sum(
            result.queue_peaks.values()
        )

    def test_guarded_peak_bounded_by_capacity(self):
        from repro.machine.errors import ErrorModel
        from repro.machine.system import MulticoreSystem

        program = self.make_program()
        system = MulticoreSystem.build(
            program, ProtectionLevel.COMMGUARD, error_model=ErrorModel.error_free()
        )
        result = system.run()
        for qid, queue in system._queues.items():
            assert result.queue_peaks[qid] <= queue.geometry.capacity_units
