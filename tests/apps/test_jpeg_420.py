"""Tests for the 4:2:0 chroma-subsampled jpeg variant."""

import numpy as np
import pytest

from repro.apps.jpeg import build_jpeg_app
from repro.apps.jpeg.codec import (
    assemble_y16,
    decode_image,
    encode_image,
    parse_header,
    subsample_chroma,
    upsample_chroma_block,
)
from repro.machine.protection import ProtectionLevel
from repro.machine.system import run_program
from repro.quality.images import synthetic_image
from repro.quality.metrics import psnr_db


class TestChromaHelpers:
    def test_subsample_is_box_average(self):
        plane = np.arange(16, dtype=float).reshape(4, 4)
        sub = subsample_chroma(plane)
        assert sub.shape == (2, 2)
        assert sub[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_upsample_nearest_neighbour(self):
        block = list(range(64))
        up = upsample_chroma_block(block)
        assert len(up) == 256
        assert up[0] == up[1] == up[16] == up[17] == block[0]
        assert up[2] == block[1]

    def test_subsample_upsample_constant_plane_exact(self):
        plane = np.full((16, 16), 99.0)
        sub = subsample_chroma(plane)
        up = upsample_chroma_block([int(v) for v in sub.reshape(64)])
        assert all(v == 99 for v in up)

    def test_assemble_y16_block_placement(self):
        blocks = [[k] * 64 for k in range(4)]
        y16 = assemble_y16(blocks)
        assert y16[0] == 0          # top-left
        assert y16[8] == 1          # top-right
        assert y16[8 * 16] == 2     # bottom-left
        assert y16[8 * 16 + 8] == 3  # bottom-right


class TestCodec420:
    def test_header_records_mode(self):
        image = synthetic_image(32, 32)
        header, _ = parse_header(encode_image(image, subsampling="420"))
        assert header.subsampling == "420"
        header, _ = parse_header(encode_image(image))
        assert header.subsampling == "444"

    def test_420_compresses_better(self):
        image = synthetic_image(64, 48)
        full = encode_image(image, quality=85, subsampling="444")
        sub = encode_image(image, quality=85, subsampling="420")
        assert len(sub) < len(full)

    def test_420_quality_reasonable(self):
        image = synthetic_image(64, 48)
        decoded = decode_image(encode_image(image, quality=85, subsampling="420"))
        assert psnr_db(image.astype(float).ravel(), decoded.astype(float).ravel()) > 20

    def test_dimension_requirements(self):
        with pytest.raises(ValueError, match="16"):
            encode_image(synthetic_image(24, 24), subsampling="420")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            encode_image(synthetic_image(32, 32), subsampling="422")


class TestGraph420:
    @pytest.fixture(scope="class")
    def app(self):
        return build_jpeg_app(width=64, height=32, quality=85, subsampling="420")

    def test_eleven_nodes(self, app):
        assert len(app.program.graph.nodes) == 11
        names = {n.name for n in app.program.graph.nodes}
        assert "F2U_upsample" in names

    def test_streaming_matches_reference(self, app):
        result = run_program(app.program, ProtectionLevel.ERROR_FREE)
        reference = decode_image(
            encode_image(synthetic_image(64, 32), quality=85, subsampling="420")
        )
        assert np.array_equal(app.output_signal(result).astype(np.uint8), reference)

    def test_frames_are_16px_rows(self, app):
        assert app.program.n_frames == 32 // 16

    def test_guarded_under_errors_full_length(self, app):
        result = run_program(
            app.program, ProtectionLevel.COMMGUARD, mtbe=60_000, seed=2
        )
        assert not result.hung
        assert len(result.outputs["F7_rows"]) == 64 * 32 * 3

    def test_444_stream_rejected_by_420_graph(self):
        from repro.apps.jpeg.graph420 import build_jpeg420_graph

        encoded = encode_image(synthetic_image(32, 32), subsampling="444")
        with pytest.raises(ValueError, match="not 4:2:0"):
            build_jpeg420_graph(encoded)
