"""Tests for the shared DSP filter library."""

import math

import numpy as np
import pytest

from repro.apps.dsp import (
    BitReverseReorder,
    ButterflyStage,
    ComplexFirFilter,
    FirFilter,
    Gain,
    WeightedCombiner,
    bandpass_taps,
    lowpass_taps,
)
from repro.words import float_to_word, word_to_float


def freq_response(taps, freq):
    """|H(f)| of an FIR at normalized frequency f."""
    n = np.arange(len(taps))
    return abs(np.sum(np.asarray(taps) * np.exp(-2j * np.pi * freq * n)))


class TestTapDesign:
    def test_lowpass_passband_and_stopband(self):
        taps = lowpass_taps(63, 0.1)
        assert freq_response(taps, 0.0) == pytest.approx(1.0, abs=0.02)
        assert freq_response(taps, 0.05) > 0.9
        assert freq_response(taps, 0.25) < 0.01

    def test_bandpass_selective(self):
        taps = bandpass_taps(63, 0.1, 0.2)
        assert freq_response(taps, 0.15) > 0.9
        assert freq_response(taps, 0.02) < 0.05
        assert freq_response(taps, 0.35) < 0.05

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            lowpass_taps(33, 0.0)
        with pytest.raises(ValueError):
            lowpass_taps(33, 0.6)


def run_filter(filt, samples):
    out = []
    rate = filt.input_rates[0]
    for i in range(0, len(samples), rate):
        words = [float_to_word(v) for v in samples[i : i + rate]]
        result = filt.work([words])
        out.extend(word_to_float(w) for w in result[0])
    return np.asarray(out)


class TestFirFilter:
    def test_matches_numpy_convolution(self):
        taps = [0.5, 0.25, -0.125, 0.0625]
        filt = FirFilter("f", taps, rate=1)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(100).astype(np.float32).astype(float)
        y = run_filter(filt, x)
        expected = np.convolve(x, taps)[: len(x)]
        assert np.allclose(y, expected, atol=1e-5)

    def test_state_persists_across_firings(self):
        filt = FirFilter("f", [1.0, 1.0])
        assert run_filter(filt, [1.0])[0] == pytest.approx(1.0)
        assert run_filter(filt, [0.0])[0] == pytest.approx(1.0)  # remembers

    def test_reset_clears_history(self):
        filt = FirFilter("f", [1.0, 1.0])
        run_filter(filt, [5.0])
        filt.reset()
        assert run_filter(filt, [0.0])[0] == 0.0

    def test_state_words_roundtrip(self):
        filt = FirFilter("f", [1.0, 1.0, 1.0])
        run_filter(filt, [1.0, 2.0])
        words = filt.state_words()
        assert len(words) == 2
        filt.write_state_word(0, float_to_word(9.0))
        assert filt.state_words()[0] == float_to_word(9.0)

    def test_batch_rate_matches_per_sample(self):
        taps = [0.3, -0.2, 0.1]
        a = FirFilter("a", taps, rate=1)
        b = FirFilter("b", taps, rate=4)
        x = list(np.linspace(-1, 1, 32))
        assert np.allclose(run_filter(a, x), run_filter(b, x), atol=1e-6)

    def test_decimation(self):
        filt = FirFilter("d", [1.0], rate=1, decimation=2)
        y = run_filter(filt, [1.0, 2.0, 3.0, 4.0])
        assert list(y) == [1.0, 3.0]

    def test_cost_scales_with_taps(self):
        small = FirFilter("s", [1.0] * 8)
        big = FirFilter("b", [1.0] * 64)
        assert big.instruction_cost() > small.instruction_cost()


class TestComplexFir:
    def test_matches_complex_convolution(self):
        taps = [1 + 1j, 0.5 - 0.25j, -0.125j]
        filt = ComplexFirFilter("c", taps)
        rng = np.random.default_rng(1)
        x = (rng.standard_normal(50) + 1j * rng.standard_normal(50)).astype(
            np.complex64
        ).astype(complex)
        interleaved = []
        for v in x:
            interleaved += [v.real, v.imag]
        y = run_filter(filt, interleaved)
        got = np.asarray(y[0::2]) + 1j * np.asarray(y[1::2])
        expected = np.convolve(x, taps)[: len(x)]
        assert np.allclose(got, expected, atol=1e-4)

    def test_state_words_interleaved(self):
        filt = ComplexFirFilter("c", [1, 1j, -1])
        assert len(filt.state_words()) == 4  # 2 complex history entries
        filt.write_state_word(1, float_to_word(3.0))
        assert filt.state_words()[1] == float_to_word(3.0)


class TestSimpleStages:
    def test_gain(self):
        g = Gain("g", 2.0, rate=2)
        assert run_filter(g, [1.0, -3.0]).tolist() == [2.0, -6.0]

    def test_weighted_combiner(self):
        c = WeightedCombiner("c", [0.5, 0.5])
        out = c.work([[float_to_word(2.0), float_to_word(4.0)]])
        assert word_to_float(out[0][0]) == pytest.approx(3.0)


class TestFftStages:
    def fft_graph_output(self, x):
        """Run data through reorder + all butterfly stages manually."""
        n = len(x)
        words = []
        for v in x:
            words += [float_to_word(v.real), float_to_word(v.imag)]
        stage_out = BitReverseReorder("r", n).work([words])[0]
        for s in range(1, n.bit_length()):
            stage_out = ButterflyStage(f"b{s}", n, s).work([stage_out])[0]
        return np.array(
            [
                word_to_float(stage_out[2 * i]) + 1j * word_to_float(stage_out[2 * i + 1])
                for i in range(n)
            ]
        )

    @pytest.mark.parametrize("n", [8, 16, 64])
    def test_matches_numpy_fft(self, n):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = x.astype(np.complex64).astype(complex)
        got = self.fft_graph_output(x)
        assert np.allclose(got, np.fft.fft(x), atol=1e-3)

    def test_bitreverse_is_involution(self):
        reorder = BitReverseReorder("r", 16)
        words = [float_to_word(float(i)) for i in range(32)]
        twice = reorder.work([reorder.work([words])[0]])[0]
        assert twice == words

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BitReverseReorder("r", 12)

    def test_impulse_transform_flat(self):
        x = np.zeros(8, dtype=complex)
        x[0] = 1.0
        got = self.fft_graph_output(x)
        assert np.allclose(got, np.ones(8), atol=1e-5)
