"""Tests for the streaming jpeg decoder graph (Fig. 1 / Fig. 2 of the paper)."""

import numpy as np
import pytest

from repro.apps.jpeg import build_jpeg_app
from repro.apps.jpeg.codec import decode_image, encode_image
from repro.apps.jpeg.graph import build_jpeg_graph
from repro.machine.protection import ProtectionLevel
from repro.machine.system import run_program
from repro.quality.images import synthetic_image
from repro.streamit.frames import FrameAnalysis, edge_frame_analysis
from repro.streamit.program import StreamProgram


@pytest.fixture(scope="module")
def small_app():
    return build_jpeg_app(width=48, height=32, quality=85)


class TestTopology:
    def test_ten_nodes_as_in_fig1(self, small_app):
        assert len(small_app.program.graph.nodes) == 10

    def test_f6_pushes_192_per_firing(self, small_app):
        """Fig. 2: F6 produces 192 items per firing (8x8 pixels x RGB)."""
        f6 = small_app.program.graph.node_by_name("F6_format")
        assert f6.output_rates == (192,)

    def test_f7_pops_one_block_row(self, small_app):
        f7 = small_app.program.graph.node_by_name("F7_rows")
        assert f7.input_rates == (48 // 8 * 192,)

    def test_paper_width_gives_15360_item_frames(self):
        """At the paper's 640-pixel width, F7 pops 15360 items per firing
        and one frame is 80 F6 firings (Fig. 2's exact numbers)."""
        image = synthetic_image(640, 8)
        graph = build_jpeg_graph(encode_image(image, quality=75))
        f7 = graph.node_by_name("F7_rows")
        assert f7.input_rates == (15360,)
        relation = edge_frame_analysis(192, 15360)
        assert relation.producer_firings == 80
        program = StreamProgram.compile(graph)
        f6 = graph.node_by_name("F6_format")
        assert program.frames.firings_per_frame[f6] == 80
        assert program.frames.firings_per_frame[f7] == 1

    def test_frames_are_block_rows(self, small_app):
        """One frame computation = one 8-pixel-high output row (Fig. 7)."""
        assert small_app.program.n_frames == 32 // 8


class TestEquivalence:
    """DESIGN.md invariant 5 for jpeg."""

    def test_streaming_matches_reference_decoder(self, small_app):
        result = run_program(small_app.program, ProtectionLevel.ERROR_FREE)
        streamed = small_app.output_signal(result).astype(np.uint8)
        reference = decode_image(encode_image(synthetic_image(48, 32), quality=85))
        assert np.array_equal(streamed, reference)

    def test_guarded_error_free_identical(self, small_app):
        plain = run_program(small_app.program, ProtectionLevel.ERROR_FREE)
        guarded = run_program(small_app.program, ProtectionLevel.COMMGUARD, mtbe=None)
        assert plain.outputs == guarded.outputs

    def test_baseline_quality_reasonable(self, small_app):
        assert 25.0 < small_app.baseline_quality() < 45.0


class TestUnderErrors:
    def test_commguard_beats_reliable_queue_on_misalignment(self):
        from repro.machine.errors import ErrorModel

        app = build_jpeg_app(width=96, height=64, quality=85)
        model = ErrorModel(
            mtbe=150_000, p_masked=0.0, p_data=0.1, p_control=0.8, p_address=0.1
        )
        guarded, unguarded = [], []
        for seed in range(3):
            g = run_program(
                app.program, ProtectionLevel.COMMGUARD, error_model=model, seed=seed
            )
            u = run_program(
                app.program,
                ProtectionLevel.PPU_RELIABLE_QUEUE,
                error_model=model,
                seed=seed,
            )
            guarded.append(app.quality(g))
            unguarded.append(app.quality(u))
        assert np.mean(guarded) > np.mean(unguarded) + 3.0

    def test_output_size_preserved_under_errors(self):
        app = build_jpeg_app(width=48, height=32, quality=85)
        result = run_program(
            app.program, ProtectionLevel.COMMGUARD, mtbe=50_000, seed=1
        )
        assert len(result.outputs["F7_rows"]) == 48 * 32 * 3
