"""Cross-cutting checks over all six benchmarks (small scale).

For every app: the error-free simulated run matches the reference (invariant
5), a guarded error-free run is identical, output lengths are as expected,
and runs are deterministic.
"""

import math

import numpy as np
import pytest

from repro.apps import build_app
from repro.apps.registry import APP_BUILDERS, APP_ORDER
from repro.machine.protection import ProtectionLevel
from repro.machine.system import run_program

SCALE = 0.1


@pytest.fixture(scope="module")
def apps():
    return {name: build_app(name, scale=SCALE) for name in APP_ORDER}


class TestRegistry:
    def test_all_six_paper_benchmarks_present(self):
        assert set(APP_BUILDERS) == {
            "audiobeamformer",
            "channelvocoder",
            "complex-fir",
            "fft",
            "jpeg",
            "mp3",
        }

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="unknown app"):
            build_app("doom")

    def test_app_metadata(self, apps):
        for name, app in apps.items():
            assert app.name == name
            assert app.metric in ("snr", "psnr")
            assert app.sink_name in app.program.expected_output_lengths()


@pytest.mark.parametrize("name", APP_ORDER)
class TestPerApp:
    def test_error_free_guarded_matches_plain(self, apps, name):
        app = apps[name]
        plain = run_program(app.program, ProtectionLevel.ERROR_FREE)
        guarded = run_program(app.program, ProtectionLevel.COMMGUARD, mtbe=None)
        assert plain.outputs == guarded.outputs

    def test_output_length_expected(self, apps, name):
        app = apps[name]
        result = run_program(app.program, ProtectionLevel.ERROR_FREE)
        expected = app.program.expected_output_lengths()[app.sink_name]
        assert len(result.outputs[app.sink_name]) == expected

    def test_deterministic_under_errors(self, apps, name):
        app = apps[name]
        a = run_program(app.program, ProtectionLevel.COMMGUARD, mtbe=30_000, seed=3)
        b = run_program(app.program, ProtectionLevel.COMMGUARD, mtbe=30_000, seed=3)
        assert a.outputs == b.outputs

    def test_terminates_at_extreme_error_rate(self, apps, name):
        app = apps[name]
        result = run_program(
            app.program, ProtectionLevel.COMMGUARD, mtbe=10_000, seed=0
        )
        assert not result.hung
        expected = app.program.expected_output_lengths()[app.sink_name]
        assert len(result.outputs[app.sink_name]) == expected

    def test_quality_metric_computes(self, apps, name):
        app = apps[name]
        result = run_program(app.program, ProtectionLevel.COMMGUARD, mtbe=20_000, seed=1)
        quality = app.quality(result)
        assert not math.isnan(quality)


class TestLossyBaselines:
    """Section 6: jpeg/mp3 quality is measured against the raw input."""

    def test_jpeg_baseline_finite(self, apps):
        baseline = apps["jpeg"].baseline_quality()
        assert 20.0 < baseline < 50.0

    def test_mp3_baseline_near_paper(self, apps):
        baseline = apps["mp3"].baseline_quality()
        assert 6.0 < baseline < 16.0  # paper: 9.4 dB

    def test_direct_comparison_apps_have_infinite_baseline(self, apps):
        for name in ("audiobeamformer", "channelvocoder", "complex-fir", "fft"):
            assert apps[name].baseline_quality() == math.inf

    def test_error_free_output_cached(self, apps):
        app = apps["fft"]
        first = app.error_free_output()
        assert app.error_free_output() is first
