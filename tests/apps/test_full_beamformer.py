"""Tests for the full GMTI-style beamformer variant (21 nodes)."""

import numpy as np
import pytest

from repro.apps.audiobeamformer import build_audiobeamformer_app
from repro.machine.protection import ProtectionLevel
from repro.machine.system import MulticoreSystem, run_program


@pytest.fixture(scope="module")
def app():
    return build_audiobeamformer_app(n_frames=512, variant="full")


class TestTopology:
    def test_node_count(self, app):
        assert len(app.program.graph.nodes) == 21

    def test_more_nodes_than_cores_packs_threads(self, app):
        system = MulticoreSystem.build(app.program, ProtectionLevel.ERROR_FREE)
        per_core = [len(core.threads) for core in system.cores]
        assert sum(per_core) == 21
        assert max(per_core) >= 3  # some cores time-slice several threads

    def test_beam_count_configurable(self):
        app3 = build_audiobeamformer_app(n_frames=256, variant="full", n_beams=3)
        names = {n.name for n in app3.program.graph.nodes}
        assert {"beamform0", "beamform1", "beamform2"} <= names

    def test_steady_state_all_unit_rate(self, app):
        reps = app.program.frames.firings_per_frame
        assert set(reps.values()) == {1}


class TestBehaviour:
    def test_error_free_guarded_transparent(self, app):
        plain = run_program(app.program, ProtectionLevel.ERROR_FREE)
        guarded = run_program(app.program, ProtectionLevel.COMMGUARD, mtbe=None)
        assert plain.outputs == guarded.outputs

    def test_detector_output_is_smooth_nonnegative(self, app):
        result = run_program(app.program, ProtectionLevel.ERROR_FREE)
        signal = app.output_signal(result)
        assert np.all(signal >= 0.0)
        assert np.max(signal) > 0.0

    def test_full_length_under_errors(self, app):
        result = run_program(
            app.program, ProtectionLevel.COMMGUARD, mtbe=30_000, seed=3
        )
        assert not result.hung
        assert len(result.outputs["sink"]) == 512

    def test_commguard_beats_baseline_with_control_errors(self, app):
        from repro.machine.errors import ErrorModel

        model = ErrorModel(
            mtbe=60_000, p_masked=0.0, p_data=0.0, p_control=1.0, p_address=0.0
        )
        qualities = {}
        for level in (ProtectionLevel.COMMGUARD, ProtectionLevel.PPU_RELIABLE_QUEUE):
            values = [
                min(app.quality(
                    run_program(app.program, level, error_model=model, seed=seed)
                ), 96.0)
                for seed in range(3)
            ]
            qualities[level] = float(np.mean(values))
        assert (
            qualities[ProtectionLevel.COMMGUARD]
            >= qualities[ProtectionLevel.PPU_RELIABLE_QUEUE]
        )
