"""Tests for the stereo mp3 variant (split-join decoder, 10 nodes)."""

import numpy as np
import pytest

from repro.apps.mp3 import build_mp3_app
from repro.apps.mp3.codec import decode_audio, encode_audio
from repro.apps.mp3.filterbank import SYSTEM_DELAY
from repro.machine.errors import ErrorModel
from repro.machine.protection import ProtectionLevel
from repro.machine.system import run_program
from repro.quality.audio import multitone_signal, speech_like_signal
from repro.quality.metrics import snr_db


def stereo_signal(n=4000, seed=11):
    return np.stack(
        [multitone_signal(n, seed=seed), speech_like_signal(n, seed=seed + 1)],
        axis=-1,
    )


class TestStereoCodec:
    def test_roundtrip_shape(self):
        raw = stereo_signal()
        decoded = decode_audio(encode_audio(raw), length=raw.shape[0])
        assert decoded.shape == raw.shape

    def test_channels_independent(self):
        """Each channel decodes as it would have alone (same filter state)."""
        raw = stereo_signal()
        stereo_dec = decode_audio(encode_audio(raw), length=raw.shape[0])
        mono_left = decode_audio(encode_audio(raw[:, 0]), length=raw.shape[0])
        assert np.array_equal(stereo_dec[:, 0], mono_left)

    def test_per_channel_snr(self):
        raw = stereo_signal()
        decoded = decode_audio(encode_audio(raw), length=raw.shape[0])
        assert snr_db(raw[:, 0], decoded[:, 0]) > 6.0
        assert snr_db(raw[:, 1], decoded[:, 1]) > 3.0

    def test_header_channel_count(self):
        from repro.apps.jpeg.bitio import BitReader
        from repro.apps.mp3.bitstream import read_header

        header = read_header(BitReader(encode_audio(stereo_signal(2000))))
        assert header.n_channels == 2

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="mono.*stereo|stereo"):
            encode_audio(np.zeros((100, 3)))


class TestStereoGraph:
    @pytest.fixture(scope="class")
    def app(self):
        return build_mp3_app(n_samples=4000, stereo=True)

    def test_ten_nodes_with_splitjoin(self, app):
        names = {n.name for n in app.program.graph.nodes}
        assert len(names) == 10
        assert {"split", "join", "G3_window_L", "G3_window_R"} <= names

    def test_streaming_matches_reference(self, app):
        raw = stereo_signal()
        reference = decode_audio(encode_audio(raw), length=raw.shape[0])
        result = run_program(app.program, ProtectionLevel.ERROR_FREE)
        out = app.output_signal(result).reshape(-1, 2)
        clipped = np.clip(reference, -2.0, 2.0)
        assert np.allclose(out, clipped, atol=0.0)

    def test_baseline_matches_paper(self, app):
        """The paper's mp3 error-free SNR is 9.4 dB; stereo lands there."""
        assert 7.0 < app.baseline_quality() < 12.0

    def test_guarded_full_length_under_errors(self, app):
        result = run_program(
            app.program, ProtectionLevel.COMMGUARD, mtbe=40_000, seed=2
        )
        assert not result.hung
        expected = app.program.expected_output_lengths()["sink"]
        assert len(result.outputs["sink"]) == expected

    def test_channel_chains_realign_independently(self, app):
        """Control errors in one chain leave the other chain's headers
        (and therefore its realignment) untouched."""
        model = ErrorModel(
            mtbe=100_000, p_masked=0.0, p_data=0.0, p_control=1.0, p_address=0.0
        )
        result = run_program(
            app.program, ProtectionLevel.COMMGUARD, error_model=model, seed=3
        )
        assert not result.hung
        stats = result.commguard_stats()
        assert stats.pads + stats.discarded_items > 0
        quality = app.quality(result)
        assert quality > -5.0  # still audio, not garbage
