"""Unit tests for the JPEG-style codec components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.jpeg.bitio import BitReader, BitWriter
from repro.apps.jpeg.codec import (
    bit_size,
    block_symbols,
    decode_amplitude,
    decode_block,
    decode_image,
    dequantize_block,
    encode_amplitude,
    encode_image,
    idct_block,
    parse_header,
    quantize_block,
    rgb_to_ycbcr,
)
from repro.apps.jpeg.dct import forward_dct, inverse_dct
from repro.apps.jpeg.huffman import CanonicalCode
from repro.apps.jpeg.tables import (
    CHROMINANCE_BASE,
    INVERSE_ZIGZAG,
    LUMINANCE_BASE,
    ZIGZAG,
    quality_scaled_table,
)
from repro.quality.images import synthetic_image
from repro.quality.metrics import psnr_db


class TestBitIO:
    def test_simple_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bits(0xFF, 8)
        writer.write_bits(0, 2)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b101
        assert reader.read_bits(8) == 0xFF
        assert reader.read_bits(2) == 0

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(4, 2)

    def test_reads_past_end_return_zero(self):
        reader = BitReader(b"\xff")
        assert reader.read_bits(8) == 0xFF
        assert reader.read_bits(8) == 0
        assert reader.exhausted

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)), max_size=50))
    def test_random_roundtrip(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value & ((1 << width) - 1), width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_bits(width) == value & ((1 << width) - 1)


class TestHuffman:
    def test_known_code_lengths(self):
        code = CanonicalCode.from_frequencies({0: 100, 1: 50, 2: 25, 3: 25})
        assert code.lengths[0] == 1

    def test_single_symbol(self):
        code = CanonicalCode.from_frequencies({7: 3})
        assert code.lengths == {7: 1}

    def test_canonical_prefix_free(self):
        code = CanonicalCode.from_frequencies({i: i + 1 for i in range(20)})
        values = sorted(code.codes.values(), key=lambda cl: cl[1])
        for i, (code_a, len_a) in enumerate(values):
            for code_b, len_b in values[i + 1 :]:
                assert code_b >> (len_b - len_a) != code_a  # no prefix

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 255), st.integers(1, 1000), min_size=1, max_size=64
        ),
        st.lists(st.integers(0, 63), max_size=100),
    )
    def test_roundtrip_random_alphabets(self, freqs, indices):
        code = CanonicalCode.from_frequencies(freqs)
        symbols = sorted(code.lengths)
        message = [symbols[i % len(symbols)] for i in indices]
        writer = BitWriter()
        for symbol in message:
            code.encode_symbol(writer, symbol)
        # Serialization roundtrip too.
        header = BitWriter()
        code.serialize(header)
        recovered = CanonicalCode.deserialize(BitReader(header.getvalue()))
        assert recovered.codes == code.codes
        decoder = recovered.decoder()
        reader = BitReader(writer.getvalue())
        assert [decoder.decode_symbol(reader) for _ in message] == message

    def test_invalid_stream_raises(self):
        code = CanonicalCode.from_frequencies({0: 1, 1: 1})
        decoder = code.decoder()
        # Exhausted reader yields zero bits forever -> decodes symbol 0
        # repeatedly, never an error; an error needs an impossible pattern.
        deep = CanonicalCode.from_lengths({5: 2, 6: 2, 7: 2})
        reader = BitReader(b"\xff\xff")
        with pytest.raises(ValueError):
            deep.decoder().decode_symbol(reader)


class TestTables:
    def test_zigzag_is_permutation(self):
        assert sorted(ZIGZAG) == list(range(64))

    def test_zigzag_known_prefix(self):
        # Standard JPEG zigzag starts 0, 1, 8, 16, 9, 2, 3, 10 ...
        assert ZIGZAG[:8] == [0, 1, 8, 16, 9, 2, 3, 10]

    def test_inverse_zigzag(self):
        for pos, idx in enumerate(ZIGZAG):
            assert INVERSE_ZIGZAG[idx] == pos

    def test_quality_50_keeps_base(self):
        assert np.array_equal(
            quality_scaled_table(LUMINANCE_BASE, 50), LUMINANCE_BASE
        )

    def test_quality_100_all_ones_or_small(self):
        table = quality_scaled_table(LUMINANCE_BASE, 100)
        assert table.max() <= 2

    def test_lower_quality_coarser(self):
        q25 = quality_scaled_table(CHROMINANCE_BASE, 25)
        q75 = quality_scaled_table(CHROMINANCE_BASE, 75)
        assert (q25 >= q75).all()

    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            quality_scaled_table(LUMINANCE_BASE, 0)


class TestDct:
    def test_orthonormal_roundtrip(self):
        rng = np.random.default_rng(0)
        block = rng.uniform(-128, 127, (8, 8))
        assert np.allclose(inverse_dct(forward_dct(block)), block, atol=1e-9)

    def test_dc_of_constant_block(self):
        block = np.full((8, 8), 64.0)
        coeffs = forward_dct(block)
        assert coeffs[0, 0] == pytest.approx(64.0 * 8)
        assert np.allclose(coeffs.reshape(64)[1:], 0, atol=1e-9)

    def test_energy_preservation(self):
        rng = np.random.default_rng(1)
        block = rng.standard_normal((8, 8))
        assert np.sum(block**2) == pytest.approx(np.sum(forward_dct(block) ** 2))


class TestAmplitudeCoding:
    @given(st.integers(-2047, 2047))
    def test_roundtrip(self, value):
        size = bit_size(value)
        writer = BitWriter()
        encode_amplitude(writer, value, size)
        reader = BitReader(writer.getvalue())
        assert decode_amplitude(reader, size) == value

    def test_bit_size_values(self):
        assert bit_size(0) == 0
        assert bit_size(1) == bit_size(-1) == 1
        assert bit_size(255) == 8
        assert bit_size(-256) == 9


class TestBlockCoding:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(-200, 200), min_size=64, max_size=64),
        st.integers(-100, 100),
    )
    def test_block_roundtrip(self, coeffs, predictor):
        from repro.apps.jpeg.codec import EOB, ZRL

        triples = block_symbols(coeffs, predictor)
        dc_code = CanonicalCode.from_frequencies({triples[0][0]: 1, 0: 1})
        ac_freqs = {}
        for symbol, _, _ in triples[1:]:
            ac_freqs[symbol] = ac_freqs.get(symbol, 0) + 1
        ac_freqs.setdefault(EOB, 1)
        ac_code = CanonicalCode.from_frequencies(ac_freqs)
        writer = BitWriter()
        symbol, amp, size = triples[0]
        dc_code.encode_symbol(writer, symbol)
        encode_amplitude(writer, amp, size)
        for symbol, amp, size in triples[1:]:
            ac_code.encode_symbol(writer, symbol)
            encode_amplitude(writer, amp, size)
        reader = BitReader(writer.getvalue())
        decoded, dc = decode_block(
            reader, dc_code.decoder(), ac_code.decoder(), predictor
        )
        assert decoded == coeffs
        assert dc == coeffs[0]


class TestQuantRoundtrip:
    def test_quantize_dequantize_idct_close(self):
        rng = np.random.default_rng(2)
        block = rng.uniform(0, 255, (8, 8))
        table = quality_scaled_table(LUMINANCE_BASE, 95)
        zz = quantize_block(block, table)
        levels = dequantize_block(zz, [int(v) for v in table.reshape(64)])
        pixels = idct_block(levels)
        assert np.max(np.abs(np.asarray(pixels).reshape(8, 8) - block)) < 24


class TestFullCodec:
    def test_encode_decode_psnr(self):
        image = synthetic_image(48, 32)
        encoded = encode_image(image, quality=85)
        decoded = decode_image(encoded)
        assert decoded.shape == image.shape
        assert psnr_db(image.astype(float).ravel(), decoded.astype(float).ravel()) > 25

    def test_compression_actually_compresses(self):
        image = synthetic_image(48, 32)
        assert len(encode_image(image, quality=75)) < image.size // 2

    def test_header_roundtrip(self):
        image = synthetic_image(32, 16)
        header, _ = parse_header(encode_image(image, quality=60))
        assert (header.width, header.height, header.quality) == (32, 16, 60)
        assert header.blocks_x == 4 and header.blocks_y == 2

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            parse_header(b"\x00\x00\x00\x00")

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValueError):
            encode_image(np.zeros((10, 10, 3), dtype=np.uint8))

    def test_quality_monotone(self):
        image = synthetic_image(48, 32)
        ref = image.astype(float).ravel()
        low = decode_image(encode_image(image, quality=30)).astype(float).ravel()
        high = decode_image(encode_image(image, quality=95)).astype(float).ravel()
        assert psnr_db(ref, high) > psnr_db(ref, low)

    def test_ycbcr_grey_axis(self):
        grey = np.full((1, 1, 3), 77.0)
        ycc = rgb_to_ycbcr(grey)
        assert ycc[0, 0, 0] == pytest.approx(77.0)
        assert ycc[0, 0, 1] == pytest.approx(128.0)
        assert ycc[0, 0, 2] == pytest.approx(128.0)
