"""Unit tests for the mp3-style codec components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.jpeg.bitio import BitReader, BitWriter
from repro.apps.mp3 import bitstream as bs
from repro.apps.mp3.codec import decode_audio, dequantize_sample, encode_audio
from repro.apps.mp3.filterbank import (
    N_BANDS,
    PROTOTYPE_TAPS,
    SYSTEM_DELAY,
    AnalysisFilterbank,
    SynthesisFilterbank,
    design_prototype,
    measure_system_delay,
    synthesis_matrix,
)
from repro.apps.mp3.quantize import (
    DEFAULT_BIT_ALLOCATION,
    FRAME_SAMPLES,
    SAMPLES_PER_BAND,
    dequantize_code,
    quantize_band,
    scalefactor_index,
    scalefactor_value,
)
from repro.quality.audio import multitone_signal
from repro.quality.metrics import snr_db


class TestFilterbank:
    def test_prototype_shape(self):
        proto = design_prototype()
        assert proto.shape == (PROTOTYPE_TAPS,)
        assert proto.sum() == pytest.approx(1.0)

    def test_system_delay_matches_mpeg(self):
        """The MPEG-1 polyphase cascade has a 481-sample delay."""
        assert SYSTEM_DELAY == 481
        assert measure_system_delay() == SYSTEM_DELAY

    def test_reconstruction_snr(self):
        x = multitone_signal(32 * 200)
        analysis, synthesis = AnalysisFilterbank(), SynthesisFilterbank()
        out = np.concatenate(
            [
                synthesis.process(analysis.process(x[i * 32 : (i + 1) * 32]))
                for i in range(200)
            ]
        )
        ref = x[: len(out) - SYSTEM_DELAY]
        rec = out[SYSTEM_DELAY:]
        assert snr_db(ref, rec) > 25.0

    def test_band_selectivity(self):
        """A pure tone lands (almost) entirely in its own subband."""
        analysis = AnalysisFilterbank()
        band = 5
        freq = (band + 0.5) / (2 * N_BANDS)
        t = np.arange(32 * 64)
        x = np.sin(2 * np.pi * freq * t)
        energy = np.zeros(N_BANDS)
        for i in range(64):
            s = analysis.process(x[i * 32 : (i + 1) * 32])
            energy += s * s
        assert np.argmax(energy) == band
        assert energy[band] > 0.8 * energy.sum()

    def test_analysis_requires_32_samples(self):
        with pytest.raises(ValueError):
            AnalysisFilterbank().process(np.zeros(16))

    def test_matrixing_requires_32_bands(self):
        with pytest.raises(ValueError):
            synthesis_matrix(np.zeros(16))

    def test_reset_clears_state(self):
        analysis = AnalysisFilterbank()
        analysis.process(np.ones(32))
        analysis.reset()
        silent = analysis.process(np.zeros(32))
        assert np.allclose(silent, 0.0)


class TestQuantizer:
    def test_scalefactor_ladder_monotone(self):
        values = [scalefactor_value(i) for i in range(64)]
        assert values == sorted(values, reverse=True)

    def test_scalefactor_index_covers_peak(self):
        for peak in (0.001, 0.1, 0.9, 3.9):
            index = scalefactor_index(peak)
            assert scalefactor_value(index) >= peak * 0.999

    def test_scalefactor_index_is_tight(self):
        index = scalefactor_index(0.5)
        if index + 1 < 64:
            assert scalefactor_value(index + 1) < 0.5

    def test_zero_peak(self):
        assert scalefactor_index(0.0) == 63

    @given(st.floats(-1.0, 1.0), st.integers(1, 10))
    def test_quantize_dequantize_error_bounded(self, sample, bits):
        sf = 1.0
        codes = quantize_band(np.array([sample]), sf, bits)
        recon = dequantize_code(codes[0], sf, bits)
        step = 2.0 / ((1 << bits) - 1)
        assert abs(recon - sample) <= step / 2 + 1e-9

    def test_zero_bits_band_dropped(self):
        assert quantize_band(np.ones(12), 1.0, 0) == []
        assert dequantize_code(0, 1.0, 0) == 0.0

    def test_dequantize_sample_clamps_scalefactor(self):
        assert dequantize_sample(0, 999, 2) == dequantize_sample(0, 63, 2)


class TestBitstream:
    def test_header_roundtrip(self):
        writer = BitWriter()
        bs.write_header(writer, 7, list(DEFAULT_BIT_ALLOCATION))
        header = bs.read_header(BitReader(writer.getvalue()))
        assert header.n_frames == 7
        assert header.bit_allocation == tuple(DEFAULT_BIT_ALLOCATION)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            bs.read_header(BitReader(b"\x00\x00"))

    def test_frame_roundtrip(self):
        allocation = tuple(DEFAULT_BIT_ALLOCATION)
        rng = np.random.default_rng(3)
        scalefactors = [int(v) for v in rng.integers(0, 64, N_BANDS)]
        codes = [
            [int(v) for v in rng.integers(0, (1 << bits) if bits else 1, SAMPLES_PER_BAND)]
            for bits in allocation
        ]
        writer = BitWriter()
        bs.write_frame(writer, scalefactors, codes, allocation)
        got_sf, got_codes = bs.read_frame(BitReader(writer.getvalue()), allocation)
        assert got_sf == scalefactors
        assert got_codes == codes


class TestFullCodec:
    def test_codec_snr_in_paper_range(self):
        raw = multitone_signal(6000)
        decoded = decode_audio(encode_audio(raw), length=6000)
        snr = snr_db(raw, decoded)
        assert 7.0 <= snr <= 16.0  # paper's mp3 baseline is 9.4 dB

    def test_padding_covers_delay(self):
        raw = multitone_signal(1000)
        decoded = decode_audio(encode_audio(raw), length=1000)
        assert decoded.shape == (1000,)
        # The tail is real signal, not padding silence.
        assert np.max(np.abs(decoded[-100:])) > 0.01

    def test_frame_count_in_header(self):
        from repro.apps.mp3.codec import FrameDecoder

        raw = multitone_signal(2000)
        decoder = FrameDecoder(encode_audio(raw))
        expected = -(-(2000 + SYSTEM_DELAY) // FRAME_SAMPLES)
        assert decoder.header.n_frames == expected

    def test_custom_allocation_changes_rate(self):
        raw = multitone_signal(3000)
        rich = encode_audio(raw, bit_allocation=[8] * 16 + [4] * 16)
        poor = encode_audio(raw, bit_allocation=list(DEFAULT_BIT_ALLOCATION))
        assert len(rich) > len(poor)
        assert snr_db(raw, decode_audio(rich, length=3000)) > snr_db(
            raw, decode_audio(poor, length=3000)
        )
