"""Store-backed campaign resume: interrupted sweeps finish byte-identically.

Two interruption modes are exercised: a deterministic in-process
``KeyboardInterrupt`` injected through the engine's ``fault_hook`` seam,
and a true SIGKILL of a ``repro sweep --store`` subprocess.  In both, the
resumed campaign must (a) re-execute zero completed specs, and (b) produce
a report byte-identical to an uninterrupted run of the same grid.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import SweepReport
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.experiments.store import RunStore, derive_campaign_id

SCALE = 0.05
SRC = Path(__file__).parent.parent.parent / "src"


def make_grid(n: int = 8) -> list[RunSpec]:
    return [RunSpec(app="fft", mtbe=100_000.0, seed=seed) for seed in range(n)]


class InterruptAfter:
    """Deterministic interrupt: let *n* runs start, then raise."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.started = 0

    def __call__(self, spec, attempt) -> None:
        if self.started >= self.n:
            raise KeyboardInterrupt
        self.started += 1


def written_at_by_key(path) -> dict:
    store = RunStore(path, fallback=False)
    return {row.key: row.provenance["written_at"] for row in store.query()}


class TestInProcessResume:
    @pytest.mark.parametrize("resume_jobs", [1, 4])
    def test_interrupted_campaign_resumes_byte_identical(
        self, tmp_path, resume_jobs
    ):
        specs = make_grid(8)
        campaign = derive_campaign_id(specs, SCALE)

        # Uninterrupted reference run in its own store.
        ref_path = tmp_path / "ref.sqlite"
        ParallelRunner(
            scale=SCALE, jobs=1,
            store=RunStore(ref_path, fallback=False), campaign=campaign,
        ).run_specs(specs)
        reference = SweepReport.from_store(
            RunStore(ref_path, fallback=False), campaign
        )
        assert all(point.ok for point in reference)

        # Interrupted run: 3 points complete, then KeyboardInterrupt.
        path = tmp_path / "store.sqlite"
        interrupted = ParallelRunner(
            scale=SCALE, jobs=1,
            store=RunStore(path, fallback=False), campaign=campaign,
            fault_hook=InterruptAfter(3),
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.run_specs(specs)
        assert interrupted.last_stats.interrupted

        status = RunStore(path, fallback=False).campaign(campaign)
        assert len(status.done) == 3
        assert len(status.pending) == 5
        before = written_at_by_key(path)

        # Resume: the full grid goes back through the engine; completed
        # positions are store hits, only the pending five execute.
        resumed = ParallelRunner(
            scale=SCALE, jobs=resume_jobs,
            store=RunStore(path, fallback=False), campaign=campaign,
        )
        resumed.run_specs(specs)
        assert resumed.last_stats.cache_hits == 3
        assert resumed.last_stats.executed == 5

        after = written_at_by_key(path)
        assert all(after[key] == stamp for key, stamp in before.items())

        report = SweepReport.from_store(RunStore(path, fallback=False), campaign)
        assert report.to_json() == reference.to_json()

    def test_resume_is_idempotent(self, tmp_path):
        specs = make_grid(4)
        campaign = derive_campaign_id(specs, SCALE)
        path = tmp_path / "store.sqlite"
        for _ in range(2):
            engine = ParallelRunner(
                scale=SCALE, jobs=1,
                store=RunStore(path, fallback=False), campaign=campaign,
            )
            engine.run_specs(specs)
        assert engine.last_stats.cache_hits == 4
        assert engine.last_stats.executed == 0


@pytest.mark.slow
class TestSigkillResume:
    """A SIGKILLed ``repro sweep --store`` subprocess resumes cleanly."""

    SWEEP = [
        "sweep", "fft", "--mtbe", "64k", "128k", "256k", "--seeds", "10",
        "--scale", str(SCALE), "--store", "db.sqlite",
    ]

    def _env(self):
        pythonpath = os.pathsep.join(
            p for p in (str(SRC), os.environ.get("PYTHONPATH")) if p
        )
        return {**os.environ, "PYTHONPATH": pythonpath}

    def _repro(self, cwd, *argv, check=True):
        result = subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            cwd=cwd, env=self._env(),
            capture_output=True, text=True, timeout=300,
        )
        if check:
            assert result.returncode == 0, result.stderr
        return result

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_kill_and_resume_byte_identical(self, tmp_path, jobs):
        ref_dir = tmp_path / "ref"
        kill_dir = tmp_path / "kill"
        ref_dir.mkdir()
        kill_dir.mkdir()
        sweep = [*self.SWEEP, "--jobs", str(jobs)]

        # Uninterrupted reference.
        self._repro(ref_dir, *sweep, "--output", "report.json")

        # Launch the same sweep, SIGKILL it once the store shows progress.
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *sweep],
            cwd=kill_dir, env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        db = kill_dir / "db.sqlite"
        deadline = time.time() + 120
        while time.time() < deadline:
            if process.poll() is not None:
                break
            if db.exists() and len(RunStore(db, fallback=False)) >= 2:
                process.send_signal(signal.SIGKILL)
                break
            time.sleep(0.01)
        process.wait(timeout=60)
        assert process.returncode == -signal.SIGKILL

        store = RunStore(db, fallback=False)
        campaign = store.campaign_ids()[0]
        status = store.campaign(campaign)
        assert len(status.done) >= 2
        before = written_at_by_key(db)

        # Resume at a different worker count than the original run.
        resume_jobs = "4" if jobs == 1 else "1"
        self._repro(
            kill_dir, "sweep", "--store", "db.sqlite", "--resume", campaign,
            "--jobs", resume_jobs, "--output", "report.json",
        )

        after = written_at_by_key(db)
        assert all(after[key] == stamp for key, stamp in before.items())
        assert RunStore(db, fallback=False).campaign(campaign).pending == ()
        assert (
            (kill_dir / "report.json").read_bytes()
            == (ref_dir / "report.json").read_bytes()
        )

    def test_store_import_makes_legacy_cache_visible(self, tmp_path):
        # A pre-existing flat cache from a store-less sweep...
        self._repro(tmp_path, "sweep", "fft", "--mtbe", "64k", "--seeds",
                    "3", "--scale", str(SCALE))
        assert (tmp_path / ".repro_cache").is_dir()
        # ...is migrated wholesale by `repro store import`...
        result = self._repro(tmp_path, "store", "import", "--db", "db.sqlite")
        assert "imported 3 run(s)" in result.stdout
        # ...after which the store-backed rerun is all hits, zero executes.
        rerun = self._repro(
            tmp_path, "sweep", "fft", "--mtbe", "64k", "--seeds", "3",
            "--scale", str(SCALE), "--store", "db.sqlite",
        )
        assert "(3 cached)" in rerun.stdout
