"""Tests for the ASCII chart renderer."""

import math

from repro.experiments.plotting import (
    GAP_MARKER,
    ascii_chart,
    loss_chart,
    quality_chart,
)


class TestAsciiChart:
    def test_single_series_renders_markers(self):
        chart = ascii_chart({"a": [(1, 1.0), (2, 2.0), (3, 3.0)]})
        assert chart.count("o") >= 3
        assert "legend: o a" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart({"a": [(1, 1.0)], "b": [(2, 2.0)]})
        assert "o a" in chart and "x b" in chart

    def test_axis_labels(self):
        chart = ascii_chart(
            {"a": [(1, 0.0), (10, 5.0)]}, x_label="MTBE", y_label="dB"
        )
        assert chart.startswith("dB")
        assert "MTBE" in chart

    def test_log_x_axis(self):
        chart = ascii_chart(
            {"a": [(100, 1.0), (100_000, 2.0)]}, log_x=True
        )
        assert "100" in chart and "100,000" in chart

    def test_nonfinite_values_skipped(self):
        chart = ascii_chart({"a": [(1, math.inf), (2, 1.0)]})
        assert "legend" in chart

    def test_all_nonfinite_handled(self):
        assert "no finite data" in ascii_chart({"a": [(1, math.nan)]})

    def test_constant_series_handled(self):
        chart = ascii_chart({"a": [(1, 5.0), (2, 5.0)]})
        assert "legend" in chart

    def test_bounds_printed(self):
        chart = ascii_chart({"a": [(0, -3.5), (1, 7.5)]})
        assert "7.5" in chart and "-3.5" in chart

    def test_nan_cell_renders_gap_marker(self):
        chart = ascii_chart({"a": [(1, 1.0), (2, math.nan), (3, 3.0)]})
        assert GAP_MARKER in chart
        assert f"{GAP_MARKER} missing" in chart

    def test_gap_extends_x_range(self):
        # The missing point sits beyond every finite x: the axis must
        # stretch to show the gap instead of clipping it away.
        chart = ascii_chart({"a": [(1, 1.0), (2, 2.0), (10, math.inf)]})
        assert GAP_MARKER in chart
        assert "10" in chart.splitlines()[-2]  # x-bounds line

    def test_no_gap_marker_without_missing_cells(self):
        chart = ascii_chart({"a": [(1, 1.0), (2, 2.0)]})
        assert GAP_MARKER not in chart

    def test_gap_marker_under_log_x(self):
        chart = ascii_chart(
            {"a": [(1_000, 1.0), (10_000, math.nan), (100_000, 2.0)]},
            log_x=True,
        )
        assert GAP_MARKER in chart


class TestFigureCharts:
    def test_quality_chart_caps_values(self):
        chart = quality_chart({"app": {1000: 120.0, 2000: 10.0}}, cap=50.0)
        assert "50.0" in chart  # capped maximum

    def test_loss_chart_log_scale(self):
        chart = loss_chart({"app": {1000: 1e-2, 2000: 1e-6}})
        assert "-2.0" in chart and "-6.0" in chart
