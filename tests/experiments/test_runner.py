"""Tests for the experiment runner and report helpers."""

import math

import pytest

from repro.experiments.parallel import RunSpec
from repro.experiments.report import db_or_errorfree, format_table
from repro.experiments.runner import (
    RunRecord,
    SimulationRunner,
    geometric_mean,
    mean_stdev,
)
from repro.machine.protection import ProtectionLevel

SCALE = 0.05


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(scale=SCALE)


class TestRunner:
    def test_app_cache(self, runner):
        assert runner.app("fft") is runner.app("fft")

    def test_record_fields(self, runner):
        record = runner.execute_spec(RunSpec(app="fft", mtbe=100_000, seed=0))
        assert isinstance(record, RunRecord)
        assert record.app == "fft"
        assert record.protection is ProtectionLevel.COMMGUARD
        assert record.committed_instructions > 0
        assert record.execution_time >= record.committed_instructions
        assert not record.hung
        assert set(record.subop_ratios) == {
            "fsm_counter",
            "ecc",
            "header_bit",
            "total",
        }

    def test_error_free_record_has_no_mtbe(self, runner):
        record = runner.execute_spec(
            RunSpec(app="fft", protection=ProtectionLevel.ERROR_FREE)
        )
        assert record.mtbe is None
        assert record.errors_injected == 0

    def test_quality_stats_caps_infinite(self, runner):
        mean, stdev = runner.quality_stats(
            "fft", mtbe=1e12, seeds=[0, 1], quality_cap_db=50.0
        )
        assert mean == 50.0
        assert stdev == 0.0

    def test_frame_scale_passed_through(self, runner):
        r1 = runner.execute_spec(RunSpec(app="fft", mtbe=None, frame_scale=1))
        r8 = runner.execute_spec(RunSpec(app="fft", mtbe=None, frame_scale=8))
        assert r8.frame_scale == 8
        assert r8.execution_time < r1.execution_time


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geometric_mean_tolerates_zero(self):
        assert geometric_mean([0.0, 1.0]) > 0

    def test_geometric_mean_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_mean_stdev(self):
        mean, stdev = mean_stdev([2.0, 4.0])
        assert mean == 3.0
        assert stdev == 1.0

    def test_mean_stdev_single_value(self):
        assert mean_stdev([7.0]) == (7.0, 0.0)

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "22.25" in text

    def test_format_table_inf_and_small(self):
        text = format_table(["x"], [[math.inf], [1e-6]])
        assert "inf" in text
        assert "e-06" in text or "1.00e-06" in text

    def test_db_or_errorfree(self):
        assert db_or_errorfree(math.inf) == "error-free"
        assert db_or_errorfree(120.0, cap=96.0) == "error-free"
        assert db_or_errorfree(20.24) == "20.2 dB"
