"""Smoke + structural tests for every figure/table harness (tiny scales).

Full-scale paper-vs-measured numbers live in EXPERIMENTS.md; here we check
each harness runs, returns the right structure, and obeys the invariants
that must hold at any scale.
"""

import pytest

from repro.experiments import (
    fig03_motivation,
    fig07_example,
    fig08_data_loss,
    fig09_jpeg_ladder,
    fig10_quality,
    fig11_quality_others,
    fig12_memory_overhead,
    fig13_runtime_overhead,
    fig14_subops,
    tables,
)
from repro.experiments.runner import SimulationRunner
from repro.machine.protection import ProtectionLevel

SCALE = 0.05
TINY_LADDER = (64_000, 1_024_000)


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(scale=SCALE)


class TestFig03:
    def test_rows_cover_all_protections(self, runner):
        rows = fig03_motivation.run(mtbe=200_000, n_seeds=1, runner=runner)
        assert [r.protection for r in rows] == list(fig03_motivation.PROTECTIONS)
        for row in rows:
            assert row.min_psnr <= row.mean_psnr <= row.max_psnr

    def test_dump_writes_images(self, runner, tmp_path):
        fig03_motivation.run(
            mtbe=200_000, n_seeds=1, dump_dir=str(tmp_path), runner=runner
        )
        assert len(list(tmp_path.glob("fig3_*.ppm"))) == 4


class TestFig07:
    def test_result_structure(self, runner):
        result = fig07_example.run(mtbe=64_000, runner=runner)
        assert result.pad_events >= 0
        assert result.errors_injected >= 0
        assert result.psnr_db > 0


class TestFig08:
    def test_ratios_bounded(self, runner):
        results = fig08_data_loss.run(
            n_seeds=1, apps=("fft", "jpeg"), ladder=TINY_LADDER, runner=runner
        )
        assert set(results) == {"fft", "jpeg"}
        for series in results.values():
            for ratio in series.values():
                assert 0.0 <= ratio < 0.05  # paper: loss stays small


class TestFig09:
    def test_ladder_keys(self, runner):
        results = fig09_jpeg_ladder.run(
            n_seeds=1, ladder=(64_000, 512_000), runner=runner
        )
        assert set(results) == {64_000, 512_000}
        baseline = runner.app("jpeg").baseline_quality()
        assert all(v <= baseline for v in results.values())


class TestFig10Fig11:
    def test_quality_points_structure(self, runner):
        points = fig10_quality.run_app(
            "mp3",
            n_seeds=1,
            frame_scales=(1, 2),
            ladder=TINY_LADDER,
            runner=runner,
        )
        assert len(points) == 4
        scales = {p.frame_scale for p in points}
        assert scales == {1, 2}
        for p in points:
            assert p.stdev_db >= 0.0

    def test_fig11_covers_four_apps(self, runner):
        results = fig11_quality_others.run(
            n_seeds=1, ladder=(64_000,), fir_frame_scales=(1,), runner=runner
        )
        assert set(results) == set(fig11_quality_others.APPS)


class TestOverheadFigures:
    def test_fig12_ratios_small_and_complete(self, runner):
        results = fig12_memory_overhead.run(apps=("fft", "mp3"), runner=runner)
        assert set(results) == {"fft", "mp3", "GMean"}
        for loads, stores in results.values():
            assert 0.0 <= loads < 0.1
            assert 0.0 <= stores < 0.1

    def test_fig13_overhead_positive_and_shrinks_with_frames(self, runner):
        results = fig13_runtime_overhead.run(
            apps=("audiobeamformer",), frame_scales=(1, 8), runner=runner
        )
        series = results["audiobeamformer"]
        assert series[1] > 0
        assert series[8] < series[1]  # larger frames -> lower overhead

    def test_fig14_header_bit_dominates_ecc_for_rate_heavy_apps(self, runner):
        results = fig14_subops.run(apps=("jpeg",), runner=runner)
        ratios = results["jpeg"]
        assert ratios["header_bit"] > ratios["ecc"]
        assert ratios["total"] >= ratios["header_bit"]
        assert ratios["total"] < 0.25

    def test_mains_render(self, runner):
        # main() functions build their own runners; just exercise formatting
        # helpers through the table/report paths instead (cheap).
        from repro.experiments.report import format_table

        assert "GMean" in format_table(["app"], [["GMean"]])


class TestTables:
    def test_table1_lists_all_five_states(self):
        text = tables.table1_text()
        for state in ("RcvCmp", "ExpHdr", "DiscFr", "Disc", "Pdg"):
            assert state in text

    def test_probe_event_costs(self):
        costs = tables.probe_event_costs()
        by_event = {c.event: c.deltas for c in costs}
        # Table 2: a regular push is just a QM-local push, no header work.
        assert by_event["push (regular item)"] == {"qm_push_local": 1}
        # A frame boundary prepares a header and computes its ECC.
        producer = by_event["new frame computation (producer)"]
        assert producer["prepare_header"] == 1
        assert producer["header_stores"] == 1
        # Crossing the frame header costs an ECC check + header-bit checks.
        pop = by_event["pop (header + item)"]
        assert pop["header_loads"] == 1
        assert pop["ecc_ops"] >= 1
        assert pop["is_header_checks"] == 2

    def test_storage_text_mentions_82(self):
        assert "82" in tables.storage_text()

    def test_full_main(self):
        text = tables.main()
        assert "Table 1" in text and "Section 5.5" in text
