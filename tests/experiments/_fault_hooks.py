"""Deterministic fault hooks for the sweep-robustness test-suite.

The underscore prefix keeps pytest from collecting this module; the hooks
are plain module-level functions so they pickle by reference into pool
workers.  Every hook keys off ``(spec.seed, attempt)`` alone — no clocks,
no randomness — so the faults they inject are bit-reproducible.
"""

import os
import time

VICTIM_SEED = 1


def crash_once(spec, attempt):
    """Kill the executing process on the victim's first attempt."""
    if spec.seed == VICTIM_SEED and attempt == 0:
        os._exit(17)


def always_crash(spec, attempt):
    """Kill the executing process on every attempt at the victim."""
    if spec.seed == VICTIM_SEED:
        os._exit(17)


def hang_once(spec, attempt):
    """Outlast any sane run timeout on the victim's first attempt."""
    if spec.seed == VICTIM_SEED and attempt == 0:
        time.sleep(30)


def fail_once(spec, attempt):
    """Raise on the victim's first attempt; succeed thereafter."""
    if spec.seed == VICTIM_SEED and attempt == 0:
        raise RuntimeError("injected fault")


def always_fail(spec, attempt):
    """Raise on every attempt at the victim."""
    if spec.seed == VICTIM_SEED:
        raise RuntimeError("injected fault")


def fail_everything(spec, attempt):
    """Raise on every attempt at every spec."""
    raise RuntimeError("injected fault")
