"""The legacy SimulationRunner entry points warn; the new ones do not."""

import warnings

import pytest

from repro.experiments.parallel import RunSpec
from repro.experiments.runner import SimulationRunner

SCALE = 0.05


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(scale=SCALE)


class TestShims:
    def test_execute_warns_and_still_works(self, runner):
        with pytest.warns(DeprecationWarning, match="SimulationRunner.execute"):
            record, result = runner.execute("fft", mtbe=100_000, seed=0)
        assert record.app == "fft"
        assert result.committed_instructions > 0

    def test_record_warns_and_still_works(self, runner):
        with pytest.warns(DeprecationWarning, match="SimulationRunner"):
            record = runner.record("fft", mtbe=100_000, seed=0)
        assert record.app == "fft"

    def test_shims_match_spec_path(self, runner):
        with pytest.warns(DeprecationWarning):
            legacy = runner.record("fft", mtbe=100_000, seed=0)
        fresh = runner.execute_spec(RunSpec(app="fft", mtbe=100_000, seed=0))
        assert legacy == fresh

    def test_warning_points_at_replacement(self, runner):
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            runner.record("fft", mtbe=100_000, seed=0)


class TestNewEntryPoints:
    def test_spec_paths_do_not_warn(self, runner):
        spec = RunSpec(app="fft", mtbe=100_000, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runner.run_spec(spec)
            runner.execute_spec(spec)

    def test_api_run_does_not_warn(self):
        from repro.api import run

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run("fft", "commguard", mtbe=100_000, seed=0, scale=SCALE)
