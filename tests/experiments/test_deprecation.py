"""The legacy SimulationRunner entry points warn; the new ones do not."""

import warnings

import pytest

from repro.experiments.parallel import RunSpec
from repro.experiments.runner import SimulationRunner

SCALE = 0.05


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(scale=SCALE)


class TestShims:
    def test_execute_warns_and_still_works(self, runner):
        with pytest.warns(DeprecationWarning, match="SimulationRunner.execute"):
            record, result = runner.execute("fft", mtbe=100_000, seed=0)
        assert record.app == "fft"
        assert result.committed_instructions > 0

    def test_record_warns_and_still_works(self, runner):
        with pytest.warns(DeprecationWarning, match="SimulationRunner"):
            record = runner.record("fft", mtbe=100_000, seed=0)
        assert record.app == "fft"

    def test_shims_match_spec_path(self, runner):
        with pytest.warns(DeprecationWarning):
            legacy = runner.record("fft", mtbe=100_000, seed=0)
        fresh = runner.execute_spec(RunSpec(app="fft", mtbe=100_000, seed=0))
        assert legacy == fresh

    def test_warning_points_at_replacement(self, runner):
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            runner.record("fft", mtbe=100_000, seed=0)


class TestNewEntryPoints:
    def test_spec_paths_do_not_warn(self, runner):
        spec = RunSpec(app="fft", mtbe=100_000, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runner.run_spec(spec)
            runner.execute_spec(spec)

    def test_api_run_does_not_warn(self):
        from repro.api import EngineOptions, run

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run("fft", "commguard", mtbe=100_000, seed=0,
                options=EngineOptions(scale=SCALE))


class TestApiRunAliases:
    """The legacy run(scale=/trace=) kwargs warn, still work, and match
    the options= spelling bit for bit."""

    def test_scale_alias_warns_and_matches_options(self):
        from repro.api import EngineOptions, run

        with pytest.warns(DeprecationWarning, match=r"repro\.api\.run\(scale"):
            legacy = run("fft", "commguard", mtbe=100_000, seed=0, scale=SCALE)
        fresh = run("fft", "commguard", mtbe=100_000, seed=0,
                    options=EngineOptions(scale=SCALE))
        assert legacy.record == fresh.record

    def test_trace_alias_warns_and_matches_options(self, tmp_path):
        from repro.api import EngineOptions, run

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with pytest.warns(DeprecationWarning, match=r"repro\.api\.run\(trace"):
            run("fft", "commguard", mtbe=100_000, seed=0,
                options=EngineOptions(scale=SCALE), trace=str(a))
        run("fft", "commguard", mtbe=100_000, seed=0,
            options=EngineOptions(scale=SCALE, trace=str(b)))
        assert a.read_bytes() == b.read_bytes()

    def test_alias_warning_points_at_replacement(self):
        from repro.api import run

        with pytest.warns(DeprecationWarning, match="EngineOptions"):
            run("fft", "commguard", mtbe=100_000, seed=0, scale=SCALE)


class TestApiSweepAliases:
    """The legacy sweep(jobs=/no_cache=/...) engine kwargs warn, still
    work, and match the options= spelling bit for bit."""

    def test_jobs_alias_warns_and_matches_options(self):
        from repro.api import EngineOptions, sweep

        with pytest.warns(DeprecationWarning, match=r"repro\.api\.sweep\(jobs"):
            legacy = sweep("fft", mtbes=100_000, seeds=2,
                           options=EngineOptions(scale=SCALE, cache=None),
                           jobs=1)
        fresh = sweep("fft", mtbes=100_000, seeds=2,
                      options=EngineOptions(scale=SCALE, cache=None, jobs=1))
        assert legacy.records == fresh.records

    def test_no_cache_alias_maps_to_cache_false(self):
        from repro.api import sweep

        with pytest.warns(
            DeprecationWarning, match=r"repro\.api\.sweep"
        ) as caught:
            sweep("fft", mtbes=100_000, seeds=1, scale=SCALE, no_cache=True,
                  jobs=1)
        messages = [str(w.message) for w in caught]
        assert any("EngineOptions(cache=...)" in m for m in messages)

    def test_alias_warning_points_at_replacement(self):
        from repro.api import sweep

        with pytest.warns(DeprecationWarning, match="EngineOptions"):
            sweep("fft", mtbes=100_000, seeds=1, scale=SCALE, jobs=1,
                  cache=False)

    def test_options_spelling_does_not_warn(self):
        import warnings

        from repro.api import EngineOptions, sweep

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sweep("fft", mtbes=100_000, seeds=1,
                  options=EngineOptions(scale=SCALE, cache=None, jobs=1))
