"""The figure registry: self-registration, aliases, and options funnelling."""

import sys
import types

import pytest

import repro.experiments  # noqa: F401  (imports populate the registry)
from repro.experiments import registry
from repro.experiments.options import EngineOptions
from repro.experiments.registry import (
    FigureSpec,
    figure_names,
    figure_specs,
    register_figure,
    resolve_figure,
)

CANONICAL = (
    "fig3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "tables", "ablations", "campaign",
)


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway figures without polluting the registry."""
    names_before = set(registry._SPECS)
    aliases_before = set(registry._ALIASES)
    yield
    for name in set(registry._SPECS) - names_before:
        del registry._SPECS[name]
    for alias in set(registry._ALIASES) - aliases_before:
        del registry._ALIASES[alias]


class TestPopulation:
    def test_every_artifact_registered_in_display_order(self):
        assert figure_names() == CANONICAL

    def test_specs_carry_module_and_description(self):
        for spec in figure_specs():
            assert spec.module.startswith("repro.experiments.")
            assert spec.description

    def test_padded_spellings_are_aliases(self):
        names = figure_names(include_aliases=True)
        assert "fig3" in names and "fig03" in names
        assert resolve_figure("fig03") is resolve_figure("fig3")
        assert resolve_figure("fig10") is resolve_figure("fig10")

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown figure 'fig99'.*fig3"):
            resolve_figure("fig99")


class TestRegistration:
    def test_reregistration_is_idempotent(self, scratch_registry):
        first = register_figure("scratch", module="m", description="d")
        assert register_figure("scratch", module="m", description="d") is first

    def test_conflicting_reregistration_raises(self, scratch_registry):
        register_figure("scratch", module="m", description="d")
        with pytest.raises(ValueError, match="already registered differently"):
            register_figure("scratch", module="other", description="d")

    def test_taken_alias_raises(self, scratch_registry):
        with pytest.raises(ValueError, match="already taken"):
            register_figure(
                "scratch", module="m", description="d", aliases=("fig3",)
            )

    def test_fig_names_get_both_spellings(self, scratch_registry):
        spec = register_figure("fig04", module="m", description="d")
        assert "fig4" in spec.aliases
        assert resolve_figure("fig4") is spec


class TestRun:
    def _fake_module(self, monkeypatch, main):
        module = types.ModuleType("fake_figure_module")
        module.main = main
        monkeypatch.setitem(sys.modules, "fake_figure_module", module)
        return FigureSpec(name="fake", module="fake_figure_module", description="d")

    def test_run_passes_only_supported_kwargs(self, monkeypatch):
        seen = {}

        def main(scale=1.0, jobs=None):
            seen.update(scale=scale, jobs=jobs)
            return "ok"

        spec = self._fake_module(monkeypatch, main)
        artifact = spec.run(EngineOptions(scale=0.5, jobs=3, cache=False))
        assert artifact.text == "ok"
        assert artifact.name == "fake"
        assert seen == {"scale": 0.5, "jobs": 3}  # cache unsupported: not passed

    def test_run_keeps_harness_default_scale_when_unset(self, monkeypatch):
        seen = {}

        def main(scale=0.7, cache=True):
            seen.update(scale=scale, cache=cache)
            return "ok"

        spec = self._fake_module(monkeypatch, main)
        spec.run(EngineOptions(cache=False))  # scale=None: harness default
        assert seen == {"scale": 0.7, "cache": False}


class TestCliIntegration:
    def test_cli_figures_derive_from_registry(self):
        from repro.cli import FIGURES

        assert tuple(FIGURES) == CANONICAL
        for name, (module_name, description) in FIGURES.items():
            spec = resolve_figure(name)
            assert (module_name, description) == (spec.module, spec.description)

    def test_figure_list_flag(self, capsys):
        from repro.cli import main

        assert main(["figure", "--list"]) == 0
        out = capsys.readouterr().out
        for name in CANONICAL:
            assert name in out

    def test_figure_without_name_prints_listing_and_usage(self, capsys):
        from repro.cli import main

        assert main(["figure"]) == 2
        captured = capsys.readouterr()
        assert "fig10" in captured.out

    def test_figure_accepts_padded_alias(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["figure", "fig03"])
        assert args.name == "fig03"
