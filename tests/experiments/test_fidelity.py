"""Fidelity gates: tolerance bands, verdict tables, reproduction bundle."""

import json
import math

import pytest

from repro.experiments.fidelity import (
    SCALE_TIERS,
    STATISTICS,
    Comparison,
    Measurement,
    PaperTarget,
    ScaleTier,
    TargetResult,
    ToleranceBand,
    Verdict,
    collect_targets,
    error_scale,
    resolve_tier,
    result_from_dict,
    targets_by_figure,
)
from repro.experiments.options import EngineOptions
from repro.experiments.paper import (
    REPRODUCTION_SCHEMA_VERSION,
    Execution,
    Provenance,
    ReproductionReport,
    render_markdown,
    run_paper,
    verdict_table,
    write_bundle,
)
from repro.experiments.store import RunStore
from repro.machine.protection import ProtectionLevel


def make_target(
    name="fig0.anchor",
    figure="fig0",
    paper_value=20.0,
    band=None,
    comparison=Comparison.MATCH,
    relative=False,
):
    return PaperTarget(
        name=name,
        figure=figure,
        description="test anchor",
        paper_value=paper_value,
        unit="dB",
        band=band or ToleranceBand(2.0, 5.0, relative=relative),
        measure=Measurement("mean_quality_db", mtbe=512_000.0),
        comparison=comparison,
        source="Fig. 0",
    )


class TestToleranceBand:
    def test_boundary_exactly_pass_within_is_pass(self):
        band = ToleranceBand(pass_within=2.0, warn_within=5.0)
        assert band.classify(2.0) is Verdict.PASS

    def test_boundary_exactly_warn_within_is_warn(self):
        band = ToleranceBand(pass_within=2.0, warn_within=5.0)
        assert band.classify(5.0) is Verdict.WARN

    def test_inside_and_outside(self):
        band = ToleranceBand(pass_within=2.0, warn_within=5.0)
        assert band.classify(0.0) is Verdict.PASS
        assert band.classify(1.999) is Verdict.PASS
        assert band.classify(2.001) is Verdict.WARN
        assert band.classify(5.001) is Verdict.FAIL

    def test_zero_width_pass_band(self):
        band = ToleranceBand(pass_within=0.0, warn_within=1.0)
        assert band.classify(0.0) is Verdict.PASS
        assert band.classify(1e-9) is Verdict.WARN

    def test_nonfinite_deviation_fails(self):
        band = ToleranceBand(pass_within=2.0, warn_within=5.0)
        assert band.classify(math.inf) is Verdict.FAIL
        assert band.classify(math.nan) is Verdict.FAIL

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            ToleranceBand(pass_within=5.0, warn_within=2.0)
        with pytest.raises(ValueError):
            ToleranceBand(pass_within=-1.0, warn_within=2.0)

    def test_describe_absolute_and_relative(self):
        assert ToleranceBand(2.0, 5.0).describe("dB") == "±2 dB / ±5 dB"
        assert ToleranceBand(0.1, 0.25, relative=True).describe("bits") == (
            "±10% / ±25%"
        )


class TestComparisonDeviation:
    def test_match_is_two_sided(self):
        target = make_target(comparison=Comparison.MATCH)
        assert target.deviation(23.0) == pytest.approx(3.0)
        assert target.deviation(17.0) == pytest.approx(3.0)

    def test_below_only_penalizes_exceeding(self):
        target = make_target(comparison=Comparison.BELOW)
        assert target.deviation(15.0) == 0.0
        assert target.deviation(23.0) == pytest.approx(3.0)

    def test_above_only_penalizes_falling_short(self):
        target = make_target(comparison=Comparison.ABOVE)
        assert target.deviation(25.0) == 0.0
        assert target.deviation(17.0) == pytest.approx(3.0)

    def test_relative_band_scales_by_reference(self):
        target = make_target(relative=True)
        assert target.deviation(22.0) == pytest.approx(0.1)

    def test_nonfinite_measured_is_infinite_deviation(self):
        target = make_target()
        assert target.deviation(math.nan) == math.inf
        assert target.classify(math.nan) is Verdict.FAIL


class TestScaleTiers:
    def test_three_documented_tiers(self):
        assert set(SCALE_TIERS) == {"smoke", "reduced", "full"}
        assert SCALE_TIERS["full"].app_scale == 1.0

    def test_resolve_tier_by_name_and_passthrough(self):
        tier = resolve_tier("smoke")
        assert tier.name == "smoke"
        assert resolve_tier(tier) is tier

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown scale tier"):
            resolve_tier("gigantic")

    def test_mtbe_scales_with_tier(self):
        # Expected errors-per-run is tier-invariant: the MTBE anchor
        # shrinks with the app's instruction count.
        m = Measurement("mean_quality_db", mtbe=1_000_000.0)
        smoke = m.specs(SCALE_TIERS["smoke"])
        full = m.specs(SCALE_TIERS["full"])
        factor = error_scale("jpeg", SCALE_TIERS["smoke"])
        assert 0.0 < factor < 1.0
        assert smoke[0].mtbe == pytest.approx(1_000_000.0 * factor)
        assert full[0].mtbe == pytest.approx(1_000_000.0)

    def test_error_scale_unknown_app_falls_back_to_linear(self):
        assert error_scale("no-such-app", SCALE_TIERS["reduced"]) == 0.25

    def test_error_scale_uses_instruction_ratio(self):
        # mp3 shrinks sub-linearly: the smoke factor is the measured
        # instruction ratio, not the linear 0.05 app scale.
        factor = error_scale("mp3", SCALE_TIERS["smoke"])
        assert factor == pytest.approx(897_204 / 10_253_760)
        assert factor > 0.05

    def test_error_scale_calibrated_override_wins(self):
        # jpeg's smoke tier is pinned by hand (see
        # fidelity._ERROR_SCALE_OVERRIDES) rather than derived from the
        # instruction table.
        assert error_scale("jpeg", SCALE_TIERS["smoke"]) == 0.05

    @pytest.mark.slow
    def test_instruction_count_table_tracks_reality(self):
        # The calibration anchors behind error_scale: re-measure a
        # sample of the table (smoke + reduced scales are cheap) and
        # tolerate ~25 % drift — the factor is an anchor, not a
        # contract.
        from repro.experiments.fidelity import _INSTRUCTION_COUNTS
        from repro.experiments.parallel import RunSpec
        from repro.experiments.runner import SimulationRunner
        from repro.machine.protection import ProtectionLevel

        for app, scale in (("jpeg", 0.05), ("jpeg", 0.25), ("fft", 0.05)):
            runner = SimulationRunner(scale=scale)
            record = runner.execute_spec(
                RunSpec(app=app, protection=ProtectionLevel.ERROR_FREE)
            )
            expected = _INSTRUCTION_COUNTS[app][scale]
            assert record.committed_instructions == pytest.approx(
                expected, rel=0.25
            )

    def test_seed_count_follows_tier(self):
        m = Measurement("mean_quality_db", mtbe=512_000.0)
        assert len(m.specs(SCALE_TIERS["full"])) == SCALE_TIERS["full"].seeds


class TestTargetRegistry:
    def test_collect_targets_nonempty_and_unique(self):
        targets = collect_targets()
        assert len(targets) >= 25
        names = [t.name for t in targets]
        assert len(names) == len(set(names))

    def test_every_figure_contributes(self):
        grouped = targets_by_figure(collect_targets())
        assert {
            "fig3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "tables", "ablations", "campaign",
        } <= set(grouped)

    def test_every_target_statistic_is_registered(self):
        for target in collect_targets():
            assert target.measure.statistic in STATISTICS

    def test_target_names_follow_figure_prefix(self):
        for target in collect_targets():
            prefix = target.name.split(".", 1)[0]
            assert prefix == target.figure


class TestVerdictTable:
    def test_golden_table(self):
        results = [
            TargetResult(
                target=make_target(name="fig0.holds_20db"),
                verdict=Verdict.PASS,
                measured=19.5,
                deviation=0.5,
            ),
            TargetResult(
                target=make_target(
                    name="fig0.stays_low",
                    paper_value=0.002,
                    band=ToleranceBand(0.0, 0.002),
                    comparison=Comparison.BELOW,
                ),
                verdict=Verdict.WARN,
                measured=0.003,
                deviation=0.001,
            ),
            TargetResult(
                target=make_target(name="fig0.skipped"),
                verdict=Verdict.SKIP,
                reason="2 of 2 required runs failed",
            ),
        ]
        expected = "\n".join(
            [
                "target           paper  measured  deviation  band               verdict",
                "-----------------------------------------------------------------------",
                "fig0.holds_20db  20.00     19.50       0.50      ±2 dB / ±5 dB   ✓ pass",
                "fig0.stays_low    0.00      0.00       0.00  ±0 dB / ±0.002 dB   ~ warn",
                "fig0.skipped     20.00         -          -      ±2 dB / ±5 dB   - skip",
            ]
        )
        assert verdict_table(results) == expected

    def test_relative_deviation_rendered_as_percent(self):
        target = make_target(relative=True)
        table = verdict_table(
            [
                TargetResult(
                    target=target,
                    verdict=Verdict.PASS,
                    measured=21.0,
                    deviation=0.05,
                )
            ]
        )
        assert "5.0%" in table

    def test_ci_halfwidth_shown_for_multiseed(self):
        from repro.experiments.aggregate import summarize

        stats = summarize([19.0, 20.0, 21.0])
        table = verdict_table(
            [
                TargetResult(
                    target=make_target(),
                    verdict=Verdict.PASS,
                    measured=stats.mean,
                    deviation=0.0,
                    stats=stats,
                )
            ]
        )
        assert "±" in table.splitlines()[-1]


def make_report(results=None, execution=None):
    return ReproductionReport(
        tier=SCALE_TIERS["smoke"],
        results=results
        or [
            TargetResult(
                target=make_target(),
                verdict=Verdict.PASS,
                measured=19.5,
                deviation=0.5,
            )
        ],
        provenance=Provenance(
            git="abc1234", python="3.12.0", platform="test", repro_version="1.0.0"
        ),
        campaign="c-deadbeef",
        total_specs=1,
        execution=execution,
    )


class TestReproductionReport:
    def test_overall_verdict_precedence(self):
        def result(verdict):
            return TargetResult(target=make_target(), verdict=verdict)

        assert make_report([result(Verdict.PASS)]).verdict is Verdict.PASS
        assert (
            make_report([result(Verdict.PASS), result(Verdict.WARN)]).verdict
            is Verdict.WARN
        )
        assert (
            make_report([result(Verdict.WARN), result(Verdict.FAIL)]).verdict
            is Verdict.FAIL
        )

    def test_all_skip_report_fails(self):
        skip = TargetResult(
            target=make_target(), verdict=Verdict.SKIP, reason="runs failed"
        )
        assert make_report([skip]).verdict is Verdict.FAIL

    def test_json_roundtrip(self):
        report = make_report(
            execution=Execution(
                wall_seconds=1.5, executed=3, store_hits=2, jobs=4
            )
        )
        loaded = ReproductionReport.from_json(report.to_json())
        assert loaded.tier == report.tier
        assert loaded.campaign == report.campaign
        assert loaded.total_specs == report.total_specs
        assert loaded.provenance == report.provenance
        assert loaded.execution == report.execution
        assert [r.verdict for r in loaded.results] == [
            r.verdict for r in report.results
        ]
        assert loaded.results[0].measured == pytest.approx(19.5)
        # The roundtrip is idempotent at the JSON layer.
        assert loaded.to_json() == report.to_json()

    def test_nonfinite_measured_survives_strict_json(self):
        report = make_report(
            [
                TargetResult(
                    target=make_target(),
                    verdict=Verdict.FAIL,
                    measured=math.nan,
                    deviation=math.inf,
                )
            ]
        )
        text = report.to_json()
        json.loads(text)  # strict JSON: no NaN/Infinity literals
        assert '"nan"' in text
        loaded = ReproductionReport.from_json(text)
        assert math.isnan(loaded.results[0].measured)
        assert loaded.results[0].deviation == math.inf

    def test_schema_version_guard(self):
        data = make_report().to_dict()
        data["schema_version"] = REPRODUCTION_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            ReproductionReport.from_dict(data)

    def test_wrong_kind_rejected(self):
        data = make_report().to_dict()
        data["kind"] = "sweep_report"
        with pytest.raises(ValueError, match="kind"):
            ReproductionReport.from_dict(data)

    def test_target_result_roundtrip(self):
        original = TargetResult(
            target=make_target(comparison=Comparison.ABOVE),
            verdict=Verdict.WARN,
            measured=16.0,
            deviation=4.0,
        )
        loaded = result_from_dict(original.to_dict())
        assert loaded.verdict is Verdict.WARN
        assert loaded.target.name == original.target.name
        assert loaded.target.comparison is Comparison.ABOVE
        assert loaded.target.band == original.target.band
        assert loaded.measured == pytest.approx(16.0)


class TestRenderMarkdown:
    def test_structure_and_determinism(self):
        report = make_report()
        text = render_markdown(report)
        assert text.startswith("# CommGuard reproduction report")
        assert "## Provenance" in text
        assert "## Verdict summary" in text
        assert "repro paper --scale smoke" in text
        assert render_markdown(report) == text

    def test_execution_block_never_leaks_into_markdown(self):
        # Determinism contract 7: wall time and hit counts are JSON-only.
        report = make_report(
            execution=Execution(
                wall_seconds=123.456, executed=7, store_hits=9, jobs=3
            )
        )
        bare = render_markdown(make_report())
        assert render_markdown(report) == bare
        assert "123.456" not in render_markdown(report)

    def test_non_full_tier_carries_disclaimer(self):
        text = render_markdown(make_report())
        assert "bound fidelity from below" in text
        assert "--scale full" in text


@pytest.mark.slow
class TestPaperPipeline:
    def test_smoke_run_resumes_with_zero_reexecution(self, tmp_path):
        options = EngineOptions(
            jobs=1,
            cache=False,
            store=RunStore(tmp_path / "store.sqlite", fallback=False),
        )
        first = run_paper("smoke", options=options)
        assert first.stats is not None and first.stats.executed > 0
        assert len(first.report.results) == len(collect_targets())
        assert first.report.counts()[Verdict.FAIL] == 0

        paths = write_bundle(first, tmp_path)
        md = (tmp_path / "REPRODUCTION.md").read_text(encoding="utf-8")
        assert (tmp_path / "reproduction.json").exists()
        assert any(p.name.endswith(".json") for p in paths[2:])

        second = run_paper("smoke", options=options)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == first.stats.executed
        write_bundle(second, tmp_path)
        assert (
            tmp_path / "REPRODUCTION.md"
        ).read_text(encoding="utf-8") == md

        loaded = ReproductionReport.from_json(
            (tmp_path / "reproduction.json").read_text(encoding="utf-8")
        )
        assert loaded.campaign == first.report.campaign
