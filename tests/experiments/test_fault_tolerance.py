"""Fault-tolerance tests for the sweep engine.

Exercises the robustness layer of :class:`ParallelRunner` against the
deterministic fault hooks in :mod:`tests.experiments._fault_hooks`:
bounded retries, per-run timeouts, worker-crash isolation, strict vs
keep-going failure semantics, interruption, and cache integrity under
simulated partial writes.  The core invariant throughout: a sweep that
survives its faults returns records bit-identical to a fault-free serial
sweep.
"""

import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    FailureRecord,
    ParallelRunner,
    RunSpec,
    RunTimeoutError,
    SweepRunError,
    SweepStats,
    resolve_jobs,
)
from repro.observability import InMemoryTracer
from tests.experiments import _fault_hooks as hooks

SCALE = 0.05


def specs_grid(n_seeds=3, mtbe=100_000):
    return [RunSpec(app="fft", mtbe=mtbe, seed=seed) for seed in range(n_seeds)]


@pytest.fixture(scope="module")
def clean_records():
    """Fault-free serial baseline over the shared grid."""
    return ParallelRunner(scale=SCALE, jobs=1).run_specs(specs_grid())


class TestRetryOnException:
    def test_serial_retry_recovers_bit_identical(self, clean_records):
        runner = ParallelRunner(
            scale=SCALE, jobs=1, retries=1, fault_hook=hooks.fail_once
        )
        assert runner.run_specs(specs_grid()) == clean_records
        assert runner.last_stats.retried == 1
        assert runner.last_stats.failed == 0
        assert runner.last_stats.worker_crashes == 0

    def test_pool_retry_recovers_bit_identical(self, clean_records):
        runner = ParallelRunner(
            scale=SCALE, jobs=2, retries=1, fault_hook=hooks.fail_once
        )
        assert runner.run_specs(specs_grid()) == clean_records
        assert runner.last_stats.retried == 1
        assert runner.last_stats.failed == 0

    def test_retries_zero_vs_many_identical_without_faults(
        self, clean_records, tmp_path
    ):
        # Retry plumbing must be invisible when nothing fails: same
        # records, same cache keys, at any retry budget.
        roots = []
        for retries in (0, 3):
            root = tmp_path / f"retries{retries}"
            runner = ParallelRunner(
                scale=SCALE, jobs=2, retries=retries, cache=ResultCache(root)
            )
            assert runner.run_specs(specs_grid()) == clean_records
            assert runner.last_stats.retried == 0
            roots.append({p.name for p in root.glob("*/*.json")})
        assert roots[0] == roots[1]

    def test_backoff_is_deterministic_and_bounded(self):
        runner = ParallelRunner(
            scale=SCALE,
            jobs=1,
            retries=2,
            retry_backoff=0.01,
            fault_hook=hooks.fail_once,
        )
        tracer = InMemoryTracer()
        runner.tracer = tracer
        runner.run_specs(specs_grid(n_seeds=2))
        (retry,) = tracer.of_kind("run-retried")
        assert retry.backoff_seconds == 0.01  # 0.01 * 2**0, no jitter
        assert retry.attempt == 1


class TestRunTimeouts:
    def test_serial_timeout_preempts_and_retries(self, clean_records):
        runner = ParallelRunner(
            scale=SCALE,
            jobs=1,
            retries=1,
            run_timeout=0.5,
            fault_hook=hooks.hang_once,
        )
        assert runner.run_specs(specs_grid()) == clean_records
        assert runner.last_stats.retried == 1
        assert runner.last_stats.failed == 0

    def test_pool_timeout_preempts_and_retries(self, clean_records):
        runner = ParallelRunner(
            scale=SCALE,
            jobs=2,
            retries=1,
            run_timeout=0.5,
            fault_hook=hooks.hang_once,
        )
        assert runner.run_specs(specs_grid()) == clean_records
        assert runner.last_stats.retried == 1
        assert runner.last_stats.worker_crashes == 0  # preempted, not killed

    def test_timeout_exhaustion_is_a_timeout_failure(self):
        runner = ParallelRunner(
            scale=SCALE,
            jobs=1,
            run_timeout=0.2,
            strict=False,
            fault_hook=lambda spec, attempt: hooks.hang_once(spec, 0),
        )
        records = runner.run_specs(specs_grid(n_seeds=2))
        assert records[hooks.VICTIM_SEED] is None
        (failure,) = runner.last_stats.failures
        assert failure.failure == "timeout"
        assert "wall-clock" in failure.message

    def test_run_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="run_timeout"):
            ParallelRunner(run_timeout=0)

    def test_retries_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="retries"):
            ParallelRunner(retries=-1)


class TestWorkerCrashIsolation:
    def test_crash_retry_recovers_bit_identical(self, clean_records):
        runner = ParallelRunner(
            scale=SCALE, jobs=2, retries=1, fault_hook=hooks.crash_once
        )
        tracer = InMemoryTracer()
        runner.tracer = tracer
        assert runner.run_specs(specs_grid()) == clean_records
        assert runner.last_stats.failed == 0
        assert runner.last_stats.worker_crashes >= 1
        assert tracer.count("worker-crashed") == runner.last_stats.worker_crashes

    def test_poison_spec_fails_without_dooming_innocents(self, clean_records):
        # Innocent specs lost to the broken pool are quarantined without
        # being charged an attempt, so with retries=0 they still complete
        # and only the crasher becomes a failure.
        runner = ParallelRunner(
            scale=SCALE, jobs=2, strict=False, fault_hook=hooks.always_crash
        )
        records = runner.run_specs(specs_grid())
        assert records[hooks.VICTIM_SEED] is None
        for index, record in enumerate(records):
            if index != hooks.VICTIM_SEED:
                assert record == clean_records[index]
        (failure,) = runner.last_stats.failures
        assert failure.failure == "crash"
        assert failure.index == hooks.VICTIM_SEED
        assert "died" in failure.message

    def test_crash_failure_raises_in_strict_mode(self):
        runner = ParallelRunner(
            scale=SCALE, jobs=2, fault_hook=hooks.always_crash
        )
        with pytest.raises(SweepRunError, match="crash"):
            runner.run_specs(specs_grid())
        assert runner.last_stats.failed == 1


class TestFailureSemantics:
    def test_strict_raise_carries_failure_record(self):
        runner = ParallelRunner(
            scale=SCALE, jobs=1, retries=1, fault_hook=hooks.always_fail
        )
        with pytest.raises(SweepRunError) as excinfo:
            runner.run_specs(specs_grid(n_seeds=2))
        failure = excinfo.value.failure
        assert isinstance(failure, FailureRecord)
        assert failure.failure == "exception"
        assert failure.attempts == 2  # first try + one retry
        assert "injected fault" in failure.message
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_keep_going_completes_the_rest(self, clean_records):
        runner = ParallelRunner(
            scale=SCALE, jobs=1, strict=False, fault_hook=hooks.always_fail
        )
        records = runner.run_specs(specs_grid())
        assert records[hooks.VICTIM_SEED] is None
        for index, record in enumerate(records):
            if index != hooks.VICTIM_SEED:
                assert record == clean_records[index]
        assert runner.last_stats.failed == 1
        assert "1 failed" in runner.last_stats.summary()

    def test_failure_summary_names_the_point(self):
        failure = FailureRecord(
            index=1,
            spec=RunSpec(app="fft", mtbe=100_000, seed=1),
            failure="timeout",
            message="run exceeded its 5s wall-clock limit",
            attempts=3,
        )
        text = failure.summary()
        assert "fft" in text and "seed=1" in text
        assert "timeout after 3 attempt(s)" in text

    def test_fault_events_reach_the_tracer(self):
        runner = ParallelRunner(
            scale=SCALE,
            jobs=1,
            retries=1,
            strict=False,
            fault_hook=hooks.always_fail,
        )
        tracer = InMemoryTracer()
        runner.tracer = tracer
        runner.run_specs(specs_grid(n_seeds=2))
        assert tracer.count("run-retried") == 1
        (failed,) = tracer.of_kind("run-failed")
        assert failed.failure == "exception"
        assert failed.attempts == 2

    def test_fault_metrics_are_labelled(self):
        runner = ParallelRunner(
            scale=SCALE,
            jobs=1,
            retries=1,
            strict=False,
            fault_hook=hooks.always_fail,
        )
        runner.run_specs(specs_grid(n_seeds=2))
        assert (
            runner.metrics.counter(
                "sweep_run_retries", app="fft", failure="exception"
            )
            == 1
        )
        assert (
            runner.metrics.counter(
                "sweep_run_failures", app="fft", failure="exception"
            )
            == 1
        )

    def test_string_fault_hook_is_imported(self):
        runner = ParallelRunner(
            scale=SCALE,
            jobs=1,
            strict=False,
            fault_hook="tests.experiments._fault_hooks:always_fail",
        )
        records = runner.run_specs(specs_grid(n_seeds=2))
        assert records[hooks.VICTIM_SEED] is None


class TestInterruption:
    def test_keyboard_interrupt_flushes_completed_records(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")

        def interrupt_after_two(stats):
            if stats.completed == 2:
                raise KeyboardInterrupt

        runner = ParallelRunner(
            scale=SCALE, jobs=1, cache=cache, progress=interrupt_after_two
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run_specs(specs_grid())
        assert runner.last_stats.interrupted
        assert runner.last_stats.completed == 2
        assert runner.last_stats.wall_seconds > 0
        assert "[interrupted]" in runner.last_stats.summary()
        assert len(cache) == 2

        # Resuming with the same cache skips the flushed points.
        resumed = ParallelRunner(scale=SCALE, jobs=1, cache=cache)
        resumed.run_specs(specs_grid())
        assert resumed.last_stats.cache_hits == 2
        assert resumed.last_stats.executed == 1


class TestStatsFreshness:
    def test_wall_seconds_fresh_without_progress_callback(self):
        runner = ParallelRunner(scale=SCALE, jobs=1)
        runner.run_specs(specs_grid(n_seeds=1))
        assert runner.last_stats.wall_seconds > 0

    def test_summary_reports_fault_counts(self):
        stats = SweepStats(
            total=4, executed=3, failed=1, retried=2, worker_crashes=1
        )
        assert "1 failed, 2 retried, 1 worker crash(es)" in stats.summary()

    def test_summary_is_quiet_without_faults(self):
        assert "failed" not in SweepStats(total=4, executed=4).summary()


class TestJobsEnvErrors:
    def test_non_numeric_env_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError, match="REPRO_JOBS='lots'"):
            resolve_jobs(None)

    def test_message_suggests_the_fix(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4.5")
        with pytest.raises(ValueError, match="unset it to use"):
            resolve_jobs(None)


class TestCacheIntegrity:
    def test_failed_replace_leaves_no_tmp_straggler(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(scale=SCALE, jobs=1)
        (record,) = runner.run_specs(specs_grid(n_seeds=1))
        spec = specs_grid(n_seeds=1)[0]
        key = spec.content_key(SCALE)

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        cache.store(key, spec, SCALE, record)  # best-effort: swallows OSError
        monkeypatch.undo()
        assert list(cache.root.glob("*/*.tmp")) == []
        assert cache.load(key) is None  # nothing partial became visible

        cache.store(key, spec, SCALE, record)
        assert cache.load(key) == record

    def test_clear_sweeps_tmp_stragglers(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        shard = cache.root / "ab"
        shard.mkdir(parents=True)
        (shard / "abandoned.tmp").write_text("{")
        assert cache.clear() == 0
        assert not shard.exists()


class TestSweepProgressContract:
    """The last ``sweep-progress`` event of a sweep mirrors its final
    :class:`SweepStats` — the counting contract pinned in
    :mod:`repro.observability.events`."""

    def final_progress(self, runner, specs):
        tracer = InMemoryTracer()
        runner.tracer = tracer
        runner.run_specs(specs)
        return tracer.of_kind("sweep-progress")[-1]

    def test_clean_sweep_reports_zero_failures(self):
        runner = ParallelRunner(scale=SCALE, jobs=1)
        last = self.final_progress(runner, specs_grid())
        stats = runner.last_stats
        assert (last.completed, last.total) == (stats.completed, stats.total)
        assert last.executed == stats.executed
        assert last.cache_hits == stats.cache_hits
        assert last.failures == stats.failed == 0

    def test_keep_going_failures_are_counted(self):
        runner = ParallelRunner(
            scale=SCALE, jobs=1, strict=False, fault_hook=hooks.always_fail
        )
        last = self.final_progress(runner, specs_grid())
        stats = runner.last_stats
        assert stats.failed == 1
        assert last.failures == stats.failed
        # completed counts successes only; the failed point is accounted
        # in failures, so completed + failures covers the whole grid.
        assert last.completed == stats.completed == last.total - 1
        assert last.completed + last.failures == last.total
        assert last.executed == stats.executed
