"""Tests for the fault-injection campaign harness."""

import pytest

from repro.experiments.campaign import (
    CampaignResult,
    Outcome,
    OutcomeThresholds,
    classify_outcome,
    compare_protections,
    run_campaign,
)
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.experiments.runner import SimulationRunner
from repro.machine.protection import ProtectionLevel

T = OutcomeThresholds(tolerable_db=5.0, catastrophic_db=5.0)


class TestClassification:
    def test_hung_is_catastrophic(self):
        assert classify_outcome(40.0, 30.0, hung=True, thresholds=T) is Outcome.CATASTROPHIC

    def test_at_baseline_is_error_free(self):
        assert classify_outcome(30.0, 30.0, False, T) is Outcome.ERROR_FREE

    def test_infinite_quality_capped(self):
        assert (
            classify_outcome(float("inf"), float("inf"), False, T)
            is Outcome.ERROR_FREE
        )

    def test_small_drop_tolerable(self):
        assert classify_outcome(26.0, 30.0, False, T) is Outcome.TOLERABLE

    def test_large_drop_degraded(self):
        assert classify_outcome(15.0, 30.0, False, T) is Outcome.DEGRADED

    def test_floor_catastrophic(self):
        assert classify_outcome(3.0, 30.0, False, T) is Outcome.CATASTROPHIC

    def test_boundaries(self):
        assert classify_outcome(25.0, 30.0, False, T) is Outcome.TOLERABLE
        assert classify_outcome(5.0, 30.0, False, T) is Outcome.CATASTROPHIC

    def test_hung_beats_perfect_quality(self):
        # A hung run is catastrophic no matter what the quality metric says.
        assert (
            classify_outcome(float("inf"), 30.0, hung=True, thresholds=T)
            is Outcome.CATASTROPHIC
        )

    def test_just_above_catastrophic_floor(self):
        assert classify_outcome(5.001, 30.0, False, T) is Outcome.DEGRADED

    def test_quality_above_baseline_is_error_free(self):
        assert classify_outcome(35.0, 30.0, False, T) is Outcome.ERROR_FREE


class TestCampaignResult:
    def test_fractions(self):
        result = CampaignResult("x", ProtectionLevel.COMMGUARD, 1000)
        result.counts = {Outcome.ERROR_FREE: 3, Outcome.TOLERABLE: 1}
        assert result.n_runs == 4
        assert result.fraction(Outcome.ERROR_FREE) == 0.75
        assert result.acceptable_fraction() == 1.0

    def test_empty_safe(self):
        result = CampaignResult("x", ProtectionLevel.COMMGUARD, 1000)
        assert result.fraction(Outcome.DEGRADED) == 0.0


class TestCampaignRuns:
    @pytest.fixture(scope="class")
    def runner(self):
        return SimulationRunner(scale=0.1)

    def test_campaign_counts_sum(self, runner):
        app = runner.app("fft")
        result = run_campaign(
            app, ProtectionLevel.COMMGUARD, mtbe=100_000, n_runs=4
        )
        assert result.n_runs == 4
        assert len(result.qualities) == 4

    def test_rare_errors_mostly_error_free(self, runner):
        app = runner.app("fft")
        result = run_campaign(app, ProtectionLevel.COMMGUARD, mtbe=1e9, n_runs=3)
        assert result.fraction(Outcome.ERROR_FREE) == 1.0

    def test_compare_protections_structure(self, runner):
        results = compare_protections(
            "complex-fir", mtbe=40_000, n_runs=3, runner=runner
        )
        assert set(results) == {
            ProtectionLevel.PPU_ONLY,
            ProtectionLevel.PPU_RELIABLE_QUEUE,
            ProtectionLevel.COMMGUARD,
        }
        for campaign in results.values():
            assert campaign.n_runs == 3

    def test_campaign_honours_frame_scale(self, runner):
        result = run_campaign(
            "fft",
            ProtectionLevel.COMMGUARD,
            mtbe=100_000,
            n_runs=2,
            frame_scale=4,
            runner=runner,
        )
        assert result.n_runs == 2

    def test_campaign_spec_carries_design_knobs(self, runner):
        spec = RunSpec(app="fft", workset_units=16)
        result = run_campaign(
            "fft",
            ProtectionLevel.COMMGUARD,
            mtbe=100_000,
            n_runs=2,
            spec=spec,
            runner=runner,
        )
        assert result.n_runs == 2

    def test_campaign_through_parallel_engine_matches_serial(self):
        serial = run_campaign(
            "fft",
            ProtectionLevel.COMMGUARD,
            mtbe=100_000,
            n_runs=3,
            runner=ParallelRunner(scale=0.1, jobs=1),
        )
        fanned = run_campaign(
            "fft",
            ProtectionLevel.COMMGUARD,
            mtbe=100_000,
            n_runs=3,
            runner=ParallelRunner(scale=0.1, jobs=2),
        )
        assert serial.counts == fanned.counts
        assert serial.qualities == fanned.qualities

    def test_prebuilt_app_shares_runner_cache(self):
        engine = ParallelRunner(scale=0.1, jobs=1)
        app = engine.app("fft")
        result = run_campaign(
            app, ProtectionLevel.COMMGUARD, mtbe=1e9, n_runs=2, runner=engine
        )
        assert result.app == "fft"
        assert engine.app("fft") is app

    def test_commguard_acceptable_fraction_dominates(self):
        """At a high error rate on jpeg, CommGuard's acceptable fraction
        must beat the unprotected baselines' (the paper's core claim in
        campaign form)."""
        runner = SimulationRunner(scale=1.0)
        results = compare_protections(
            "jpeg", mtbe=300_000, n_runs=4, runner=runner
        )
        guarded = results[ProtectionLevel.COMMGUARD]
        assert guarded.acceptable_fraction() + guarded.fraction(
            Outcome.DEGRADED
        ) >= results[ProtectionLevel.PPU_RELIABLE_QUEUE].acceptable_fraction()
        assert guarded.mean_quality() > results[
            ProtectionLevel.PPU_RELIABLE_QUEUE
        ].mean_quality()
