"""Tests for the parallel sweep engine: specs, cache, determinism, stats."""

import dataclasses
import json

import pytest

from repro.experiments.cache import (
    CACHE_VERSION,
    ResultCache,
    record_from_dict,
    record_to_dict,
    spec_key,
)
from repro.experiments.parallel import (
    ParallelRunner,
    RunSpec,
    SweepStats,
    resolve_jobs,
)
from repro.experiments.runner import SimulationRunner
from repro.machine.protection import ProtectionLevel

SCALE = 0.05


def specs_grid(n_seeds=2, mtbes=(100_000, 1_000_000)):
    return [
        RunSpec(app="fft", mtbe=mtbe, seed=seed)
        for mtbe in mtbes
        for seed in range(n_seeds)
    ]


class TestRunSpec:
    def test_content_key_is_stable(self):
        spec = RunSpec(app="fft", mtbe=100_000, seed=1)
        assert spec.content_key(0.5) == spec.content_key(0.5)

    def test_content_key_changes_with_every_field(self):
        base = RunSpec(app="fft", mtbe=100_000, seed=1)
        variants = [
            dataclasses.replace(base, app="jpeg"),
            dataclasses.replace(base, protection=ProtectionLevel.PPU_ONLY),
            dataclasses.replace(base, mtbe=200_000),
            dataclasses.replace(base, seed=2),
            dataclasses.replace(base, frame_scale=2),
            dataclasses.replace(base, workset_units=8),
            dataclasses.replace(base, p_masked=0.5),
        ]
        keys = {base.content_key(0.5)} | {v.content_key(0.5) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_content_key_changes_with_scale(self):
        spec = RunSpec(app="fft", mtbe=100_000)
        assert spec.content_key(0.5) != spec.content_key(1.0)

    def test_default_error_model_is_none(self):
        assert RunSpec(app="fft", mtbe=100_000).error_model() is None

    def test_error_model_overrides_merge_with_defaults(self):
        model = RunSpec(app="fft", mtbe=100_000, p_masked=0.0).error_model()
        assert model.p_masked == 0.0
        assert model.p_data + model.p_control + model.p_address == pytest.approx(1.0)

    def test_commguard_config_carries_knobs(self):
        config = RunSpec(app="fft", frame_scale=4, workset_units=8).commguard_config()
        assert config.frame_scale == 4
        assert config.workset_units == 8


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(5) == 5

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestDeterminism:
    def test_serial_matches_base_runner(self):
        specs = specs_grid(n_seeds=1)
        base = SimulationRunner(scale=SCALE)
        engine = ParallelRunner(scale=SCALE, jobs=1)
        assert base.run_specs(specs) == engine.run_specs(specs)

    def test_parallel_bit_identical_to_serial(self):
        """The acceptance bar: jobs=4 reproduces jobs=1 exactly."""
        specs = specs_grid(n_seeds=2)
        serial = ParallelRunner(scale=SCALE, jobs=1).run_specs(specs)
        parallel = ParallelRunner(scale=SCALE, jobs=4).run_specs(specs)
        assert serial == parallel

    def test_results_keep_spec_order(self):
        specs = specs_grid(n_seeds=3)
        records = ParallelRunner(scale=SCALE, jobs=4).run_specs(specs)
        assert [(r.mtbe, r.seed) for r in records] == [
            (s.mtbe, s.seed) for s in specs
        ]

    def test_quality_stats_matches_serial_runner(self):
        serial = SimulationRunner(scale=SCALE).quality_stats(
            "fft", mtbe=100_000, seeds=[0, 1]
        )
        engine = ParallelRunner(scale=SCALE, jobs=2).quality_stats(
            "fft", mtbe=100_000, seeds=[0, 1]
        )
        assert serial == engine


class TestCache:
    def test_record_round_trip(self, tmp_path):
        record = SimulationRunner(scale=SCALE).execute_spec(
            RunSpec(app="fft", mtbe=100_000)
        )
        assert record_from_dict(record_to_dict(record)) == record

    def test_second_sweep_hits_cache(self, tmp_path):
        specs = specs_grid()
        first = ParallelRunner(scale=SCALE, jobs=1, cache=tmp_path / "c")
        records = first.run_specs(specs)
        assert first.last_stats.executed == len(specs)
        assert first.last_stats.cache_hits == 0

        second = ParallelRunner(scale=SCALE, jobs=1, cache=tmp_path / "c")
        cached = second.run_specs(specs)
        assert second.last_stats.executed == 0
        assert second.last_stats.cache_hits == len(specs)
        assert cached == records

    def test_partial_hits_resume_interrupted_sweeps(self, tmp_path):
        cache = tmp_path / "c"
        head = specs_grid(n_seeds=1)
        ParallelRunner(scale=SCALE, jobs=1, cache=cache).run_specs(head)
        full = specs_grid(n_seeds=2)
        runner = ParallelRunner(scale=SCALE, jobs=2, cache=cache)
        runner.run_specs(full)
        assert runner.last_stats.cache_hits == len(head)
        assert runner.last_stats.executed == len(full) - len(head)

    def test_spec_change_invalidates(self, tmp_path):
        cache = tmp_path / "c"
        spec = RunSpec(app="fft", mtbe=100_000, seed=0)
        ParallelRunner(scale=SCALE, jobs=1, cache=cache).run_specs([spec])
        runner = ParallelRunner(scale=SCALE, jobs=1, cache=cache)
        runner.run_specs([dataclasses.replace(spec, seed=1)])
        assert runner.last_stats.cache_hits == 0

    def test_scale_change_invalidates(self, tmp_path):
        cache = tmp_path / "c"
        spec = RunSpec(app="fft", mtbe=100_000, seed=0)
        ParallelRunner(scale=SCALE, jobs=1, cache=cache).run_specs([spec])
        other = ParallelRunner(scale=0.1, jobs=1, cache=cache)
        other.run_specs([spec])
        assert other.last_stats.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache_root = tmp_path / "c"
        spec = RunSpec(app="fft", mtbe=100_000, seed=0)
        runner = ParallelRunner(scale=SCALE, jobs=1, cache=cache_root)
        records = runner.run_specs([spec])
        path = ResultCache(cache_root).path(spec.content_key(SCALE))
        path.write_text("{not json")
        again = ParallelRunner(scale=SCALE, jobs=1, cache=cache_root)
        assert again.run_specs([spec]) == records
        assert again.last_stats.cache_hits == 0
        assert again.last_stats.executed == 1

    def test_version_tag_in_key(self):
        spec = RunSpec(app="fft", mtbe=100_000)
        key = spec_key(spec, SCALE)
        assert isinstance(CACHE_VERSION, int)
        assert len(key) == 64  # sha256 hex

    def test_clear_and_len(self, tmp_path):
        cache_root = tmp_path / "c"
        ParallelRunner(scale=SCALE, jobs=1, cache=cache_root).run_specs(
            specs_grid(n_seeds=1)
        )
        cache = ResultCache(cache_root)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_env_var_selects_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert ResultCache().root == tmp_path / "envcache"

    def test_coerce_forms(self, tmp_path):
        assert ResultCache.coerce(None) is None
        assert ResultCache.coerce(False) is None
        assert ResultCache.coerce(True) is not None
        cache = ResultCache(tmp_path)
        assert ResultCache.coerce(cache) is cache
        assert ResultCache.coerce(tmp_path / "x").root == tmp_path / "x"

    def test_stored_payload_is_inspectable_json(self, tmp_path):
        cache_root = tmp_path / "c"
        spec = RunSpec(app="fft", mtbe=100_000, seed=0)
        ParallelRunner(scale=SCALE, jobs=1, cache=cache_root).run_specs([spec])
        path = ResultCache(cache_root).path(spec.content_key(SCALE))
        payload = json.loads(path.read_text())
        assert payload["spec"]["app"] == "fft"
        assert payload["scale"] == SCALE
        assert payload["record"]["protection"] == "commguard"


class TestStats:
    def test_stats_fields(self):
        specs = specs_grid(n_seeds=1)
        runner = ParallelRunner(scale=SCALE, jobs=1)
        runner.run_specs(specs)
        stats = runner.last_stats
        assert stats.total == len(specs)
        assert stats.completed == len(specs)
        assert stats.wall_seconds > 0
        assert stats.cpu_seconds > 0
        assert stats.jobs == 1
        assert "runs" in stats.summary()

    def test_progress_callback_fires_per_run(self):
        seen = []
        runner = ParallelRunner(scale=SCALE, jobs=1, progress=seen.append)
        runner.run_specs(specs_grid(n_seeds=1))
        assert len(seen) == 2
        assert all(isinstance(s, SweepStats) for s in seen)
        assert seen[-1].completed == 2
