"""Tests for multi-seed aggregation (`repro.experiments.aggregate`) and
the quality-cap clamping that keeps CI bounds finite."""

import math

import pytest

from repro.experiments.aggregate import CellStats, bootstrap_ci, summarize
from repro.experiments.runner import geometric_mean
from repro.quality.metrics import QUALITY_CAP_DB, clamp_db


class TestClampDb:
    def test_passthrough_in_band(self):
        assert clamp_db(20.5) == 20.5
        assert clamp_db(-20.5) == -20.5

    def test_infinities_clamp_to_cap(self):
        assert clamp_db(math.inf) == QUALITY_CAP_DB
        assert clamp_db(-math.inf) == -QUALITY_CAP_DB

    def test_nan_clamps_to_floor(self):
        assert clamp_db(math.nan) == -QUALITY_CAP_DB

    def test_finite_overflow_clamps(self):
        assert clamp_db(500.0) == QUALITY_CAP_DB
        assert clamp_db(-500.0) == -QUALITY_CAP_DB

    def test_custom_cap(self):
        assert clamp_db(80.0, cap=50.0) == 50.0


class TestBootstrapCi:
    def test_deterministic(self):
        values = [18.0, 19.5, 21.0, 17.2, 20.3]
        assert bootstrap_ci(values) == bootstrap_ci(values)

    def test_single_value_degenerates_to_point(self):
        assert bootstrap_ci([42.0]) == (42.0, 42.0)

    def test_interval_brackets_the_mean(self):
        values = [10.0, 12.0, 14.0, 16.0, 18.0]
        lo, hi = bootstrap_ci(values)
        mean = sum(values) / len(values)
        assert lo <= mean <= hi
        assert lo < hi

    def test_interval_within_data_range(self):
        values = [5.0, 6.0, 7.0]
        lo, hi = bootstrap_ci(values)
        assert min(values) <= lo and hi <= max(values)

    def test_wider_confidence_widens_interval(self):
        values = [10.0, 12.0, 14.0, 16.0, 18.0, 11.0, 13.0]
        lo99, hi99 = bootstrap_ci(values, confidence=0.99)
        lo80, hi80 = bootstrap_ci(values, confidence=0.80)
        assert hi99 - lo99 >= hi80 - lo80

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_confidence(self, confidence):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=confidence)

    def test_identical_values_zero_width(self):
        assert bootstrap_ci([7.0, 7.0, 7.0, 7.0]) == (7.0, 7.0)


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([2.0, 4.0, 6.0])
        assert stats.n == 3
        assert stats.mean == 4.0
        assert stats.stdev == pytest.approx(math.sqrt(8.0 / 3.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_cap_keeps_infinite_quality_finite(self):
        """The satellite-6 bug: an inf quality (error-free reproduction)
        must contribute the cap, never poison mean/stdev with inf-inf."""
        stats = summarize([math.inf, 20.0, math.inf], cap=QUALITY_CAP_DB)
        assert math.isfinite(stats.mean)
        assert math.isfinite(stats.stdev)
        assert stats.mean == pytest.approx((96.0 + 20.0 + 96.0) / 3)

    def test_ci_bound_at_cap_is_the_cap_not_nan(self):
        stats = summarize([math.inf, math.inf, math.inf], cap=QUALITY_CAP_DB)
        assert stats.ci_lo == QUALITY_CAP_DB
        assert stats.ci_hi == QUALITY_CAP_DB
        assert stats.stdev == 0.0

    def test_floor_for_garbled_runs(self):
        stats = summarize([-math.inf, math.nan], cap=QUALITY_CAP_DB)
        assert stats.mean == -QUALITY_CAP_DB
        assert math.isfinite(stats.ci_lo)

    def test_no_cap_leaves_values_alone(self):
        stats = summarize([1.0, 3.0])
        assert stats.mean == 2.0


class TestCellStats:
    def test_halfwidth_and_format(self):
        stats = CellStats(n=3, mean=18.321, stdev=1.0, ci_lo=17.4, ci_hi=19.1)
        assert stats.ci_halfwidth == pytest.approx(0.85)
        assert stats.format() == "18.32 ±0.85"
        assert stats.format(digits=1) == "18.3 ±0.9"


class TestGeometricMean:
    def test_plain(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_zero_floors_instead_of_crashing(self):
        assert geometric_mean([0.0, 4.0]) > 0.0

    def test_skips_non_finite_entries(self):
        """A NaN or inf cell (e.g. a pre-clamp CI bound) must not poison
        the whole table cell."""
        assert geometric_mean([2.0, math.nan, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([2.0, math.inf, 8.0]) == pytest.approx(4.0)

    def test_all_non_finite_is_nan(self):
        assert math.isnan(geometric_mean([math.nan, math.inf]))

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))
