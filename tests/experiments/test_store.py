"""RunStore: roundtrips, legacy migration, campaigns, multi-writer safety."""

import json
import sqlite3
import threading

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import FailureRecord, ParallelRunner, RunSpec
from repro.experiments.runner import SimulationRunner
from repro.experiments.store import RunStore, derive_campaign_id

SCALE = 0.05


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(scale=SCALE)


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "store.sqlite", fallback=False)


def make_spec(seed: int = 0, mtbe: float = 100_000.0) -> RunSpec:
    return RunSpec(app="fft", mtbe=mtbe, seed=seed)


@pytest.fixture(scope="module")
def executed(runner):
    spec = make_spec()
    return spec, runner.execute_spec(spec)


class TestStoreBasics:
    def test_roundtrip(self, store, executed):
        spec, record = executed
        key = spec.content_key(SCALE)
        assert store.get(key) is None
        assert key not in store
        store.store(key, spec, SCALE, record)
        assert store.get(key) == record
        assert store.load(key) == record
        assert key in store
        assert len(store) == 1
        assert store.keys() == frozenset({key})

    def test_load_miss_without_fallback(self, store):
        assert store.load("no-such-key") is None

    def test_provenance_is_stamped(self, store, executed):
        spec, record = executed
        key = spec.content_key(SCALE)
        store.set_context(jobs=3, campaign="c-test")
        store.store(key, spec, SCALE, record, provenance={"entry": "test"})
        row = store.query()[0]
        assert row.provenance["jobs"] == 3
        assert row.provenance["campaign"] == "c-test"
        assert row.provenance["entry"] == "test"
        assert "written_at" in row.provenance
        assert "worker" in row.provenance

    def test_clear_drops_runs_only(self, store, executed):
        spec, record = executed
        key = spec.content_key(SCALE)
        store.store(key, spec, SCALE, record)
        failure = FailureRecord(
            index=0, spec=make_spec(9), failure="exception",
            message="boom", attempts=1,
        )
        store.record_failure(failure, scale=SCALE)
        assert store.clear() == 1
        assert len(store) == 0
        assert store.failure_for(make_spec(9).content_key(SCALE)) is not None

    def test_coerce(self, store, tmp_path):
        assert RunStore.coerce(None) is None
        assert RunStore.coerce(False) is None
        assert RunStore.coerce(store) is store
        coerced = RunStore.coerce(str(tmp_path / "other.sqlite"))
        assert coerced.path == tmp_path / "other.sqlite"

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.sqlite"
        RunStore(path, fallback=False).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE meta SET value='99' WHERE key='schema_version'")
        conn.close()
        with pytest.raises(ValueError, match="schema version 99"):
            RunStore(path, fallback=False)


class TestLegacyFallback:
    def test_read_through_adopts_legacy_entry(self, tmp_path, executed):
        spec, record = executed
        key = spec.content_key(SCALE)
        cache = ResultCache(tmp_path / "cache")
        cache.store(key, spec, SCALE, record)
        store = RunStore(tmp_path / "store.sqlite", fallback=cache)
        assert store.get(key) is None  # store-only: not there yet
        assert store.load(key) == record  # read-through hit...
        assert store.get(key) == record  # ...adopted into the store
        row = store.query()[0]
        assert "imported_from" in row.provenance

    def test_import_cache_migrates_once(self, tmp_path, runner):
        cache = ResultCache(tmp_path / "cache")
        for seed in range(3):
            spec = make_spec(seed)
            cache.store(
                spec.content_key(SCALE), spec, SCALE, runner.execute_spec(spec)
            )
        store = RunStore(tmp_path / "store.sqlite", fallback=cache)
        assert store.import_cache() == 3
        assert len(store) == 3
        assert store.import_cache() == 0  # existing rows are skipped

    def test_export_jsonl(self, tmp_path, store, executed):
        import io

        spec, record = executed
        store.store(spec.content_key(SCALE), spec, SCALE, record)
        buffer = io.StringIO()
        assert store.export(buffer) == 1
        line = json.loads(buffer.getvalue())
        assert line["key"] == spec.content_key(SCALE)
        assert line["spec"]["app"] == "fft"


class TestFailures:
    def test_failure_roundtrip_latest_wins(self, store):
        spec = make_spec(5)
        for attempt, message in enumerate(["first", "second"], start=1):
            store.record_failure(
                FailureRecord(
                    index=2, spec=spec, failure="timeout",
                    message=message, attempts=attempt,
                ),
                campaign="c-x",
                scale=SCALE,
            )
        failure = store.failure_for(spec.content_key(SCALE))
        assert failure.message == "second"
        assert failure.attempts == 2
        assert failure.spec == spec

    def test_gc_prunes_superseded_failures(self, store, executed):
        spec, record = executed
        key = spec.content_key(SCALE)
        store.record_failure(
            FailureRecord(
                index=0, spec=spec, failure="exception",
                message="transient", attempts=1,
            ),
            scale=SCALE,
        )
        store.store(key, spec, SCALE, record)  # the later success supersedes
        collected = store.gc()
        assert collected.superseded_failures == 1
        assert store.failure_for(key) is None

    def test_gc_sweeps_orphans_in_fallback_and_traces(self, tmp_path, executed):
        spec, record = executed
        cache = ResultCache(tmp_path / "cache")
        store = RunStore(tmp_path / "store.sqlite", fallback=cache)
        store.store(spec.content_key(SCALE), spec, SCALE, record)
        straggler = tmp_path / "cache" / "ab"
        straggler.mkdir(parents=True)
        (straggler / "deadbeef.json.tmp").write_text("{}")
        traces = tmp_path / "traces"
        traces.mkdir()
        (traces / f"{spec.content_key(SCALE)}.jsonl").write_text("{}\n")
        (traces / ("f" * 64 + ".jsonl")).write_text("{}\n")
        collected = store.gc(trace_dirs=[traces])
        assert collected.tmp_stragglers == 1
        assert collected.dangling_traces == 1  # the live key's trace stays
        assert (traces / f"{spec.content_key(SCALE)}.jsonl").exists()


class TestCampaigns:
    def test_begin_is_idempotent_and_derives_status(self, store, runner):
        specs = [make_spec(seed) for seed in range(4)]
        status = store.begin_campaign("c-1", specs, SCALE, app="fft")
        assert status.total == 4
        assert status.pending == (0, 1, 2, 3)
        store.store(
            specs[1].content_key(SCALE), specs[1], SCALE,
            runner.execute_spec(specs[1]),
        )
        again = store.begin_campaign("c-1", specs, SCALE)
        assert again.done == frozenset({1})
        assert again.pending == (0, 2, 3)
        assert "1/4 done" in again.summary()

    def test_begin_rejects_grid_mismatch(self, store):
        store.begin_campaign("c-1", [make_spec(0)], SCALE)
        with pytest.raises(ValueError, match="different grid"):
            store.begin_campaign("c-1", [make_spec(1)], SCALE)
        with pytest.raises(ValueError, match="different grid"):
            store.begin_campaign("c-1", [make_spec(0)], SCALE * 2)

    def test_concurrent_beginners_serialize(self, tmp_path):
        """Two processes' worth of beginners racing the same new campaign
        must both succeed: the check-and-insert is one immediate
        transaction, so the loser lands on the verification path instead
        of an IntegrityError."""
        path = tmp_path / "race.sqlite"
        specs = [make_spec(seed) for seed in range(3)]
        barrier = threading.Barrier(4)
        errors: list = []

        def begin():
            try:
                local = RunStore(path, fallback=False)
                barrier.wait()
                local.begin_campaign("c-race", specs, SCALE, app="fft")
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=begin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        status = RunStore(path, fallback=False).campaign("c-race")
        assert status.total == 3
        assert status.pending == (0, 1, 2)

    def test_unknown_campaign_names_known_ids(self, store):
        store.begin_campaign("c-known", [make_spec(0)], SCALE)
        with pytest.raises(ValueError, match="c-known"):
            store.campaign("c-missing")

    def test_failed_positions_derived_from_failures(self, store):
        specs = [make_spec(seed) for seed in range(2)]
        store.begin_campaign("c-f", specs, SCALE)
        store.record_failure(
            FailureRecord(
                index=0, spec=specs[0], failure="crash",
                message="died", attempts=2,
            ),
            campaign="c-f",
            scale=SCALE,
        )
        status = store.campaign("c-f")
        assert status.failed == frozenset({0})
        assert status.pending == (1,)

    def test_derive_campaign_id_is_deterministic(self):
        grid = [make_spec(seed) for seed in range(3)]
        assert derive_campaign_id(grid, SCALE) == derive_campaign_id(grid, SCALE)
        assert derive_campaign_id(grid, SCALE) != derive_campaign_id(grid, 0.1)
        assert derive_campaign_id(grid, SCALE) != derive_campaign_id(
            grid[::-1], SCALE
        )
        assert derive_campaign_id(grid, SCALE).startswith("c-")


class TestQueryAndStats:
    def test_query_filters_and_limit(self, store, runner):
        for seed in range(3):
            spec = make_spec(seed)
            store.store(
                spec.content_key(SCALE), spec, SCALE, runner.execute_spec(spec)
            )
        assert len(store.query(app="fft")) == 3
        assert len(store.query(app="jpeg")) == 0
        assert len(store.query(seed=1)) == 1
        assert len(store.query(limit=2)) == 2
        seeds = [row.spec.seed for row in store.query()]
        assert seeds == sorted(seeds)

    def test_stats_counts(self, store, executed):
        spec, record = executed
        store.store(spec.content_key(SCALE), spec, SCALE, record)
        store.begin_campaign("c-s", [spec], SCALE)
        stats = store.stats()
        assert stats.runs == 1
        assert stats.campaigns == 1
        assert stats.by_app == {"fft": 1}
        assert stats.size_bytes > 0


class TestEngineIntegration:
    def test_runner_writes_and_rereads_store(self, tmp_path):
        specs = [make_spec(seed) for seed in range(3)]
        path = tmp_path / "store.sqlite"
        first = ParallelRunner(scale=SCALE, jobs=1, store=RunStore(path, fallback=False))
        records = first.run_specs(specs)
        assert first.last_stats.executed == 3
        second = ParallelRunner(scale=SCALE, jobs=1, store=RunStore(path, fallback=False))
        again = second.run_specs(specs)
        assert second.last_stats.cache_hits == 3
        assert again == records

    def test_attach_store_keeps_cache_as_fallback(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = ParallelRunner(scale=SCALE, jobs=1, cache=cache)
        store = RunStore(tmp_path / "store.sqlite", fallback=False)
        engine.attach_store(store)
        assert engine.cache is store
        assert store.fallback is cache

    def test_attach_without_cache_clears_defaulted_fallback(
        self, tmp_path, monkeypatch
    ):
        """``--no-cache --store``: the store's implicit ``.repro_cache/``
        read-through must not resurrect the cache the user disabled."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "legacy"))
        store = RunStore(tmp_path / "store.sqlite")  # defaulted fallback
        assert store.fallback is not None
        ParallelRunner(scale=SCALE, jobs=1, cache=None, store=store)
        assert store.fallback is None

    def test_attach_without_cache_keeps_explicit_fallback(self, tmp_path):
        cache = ResultCache(tmp_path / "chosen")
        store = RunStore(tmp_path / "store.sqlite", fallback=cache)
        ParallelRunner(scale=SCALE, jobs=1, cache=None, store=store)
        assert store.fallback is cache

    def test_wall_seconds_provenance_is_per_run(self, tmp_path):
        """Each row's wall_seconds is that run's own elapsed time, not
        the sweep's cumulative clock — so for a serial sweep the per-row
        times sum to at most the sweep total."""
        path = tmp_path / "store.sqlite"
        engine = ParallelRunner(
            scale=SCALE, jobs=1, store=RunStore(path, fallback=False)
        )
        engine.run_specs([make_spec(seed) for seed in range(4)])
        walls = [
            row.provenance["wall_seconds"]
            for row in RunStore(path, fallback=False).query()
        ]
        assert len(walls) == 4
        assert all(wall >= 0 for wall in walls)
        assert sum(walls) <= engine.last_stats.wall_seconds + 0.005

    def test_run_error_model_override_bypasses_store(self, tmp_path):
        from repro.api import EngineOptions, run
        from repro.machine.errors import ErrorModel

        store = RunStore(tmp_path / "store.sqlite", fallback=False)
        options = EngineOptions(scale=SCALE, store=store)
        baseline = run("fft", mtbe=100_000.0, seed=0, options=options)
        key = baseline.spec.content_key(SCALE)
        assert store.get(key) == baseline.record
        assert len(store) == 1
        overridden = run(
            "fft", mtbe=100_000.0, seed=0,
            error_model=ErrorModel(mtbe=1_000.0),
            options=options,
        )
        # Executed (not served from the store: a hit carries result=None)
        # and the baseline row was not overwritten or duplicated.
        assert overridden.result is not None
        assert len(store) == 1
        assert store.get(key) == baseline.record


class TestConcurrentWriters:
    """Two engines over one store database must behave like one serial
    engine: same rows, no ``database is locked`` failures."""

    def _run_grid(self, path, specs, errors):
        try:
            engine = ParallelRunner(
                scale=SCALE, jobs=1, store=RunStore(path, fallback=False)
            )
            engine.run_specs(specs)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def _rows(self, path):
        store = RunStore(path, fallback=False)
        return {
            row.key: (row.spec, row.record) for row in store.query()
        }

    @pytest.mark.parametrize("overlap", [True, False], ids=["overlapping", "disjoint"])
    def test_concurrent_runners_match_serial(self, tmp_path, overlap):
        all_specs = [make_spec(seed) for seed in range(8)]
        if overlap:
            grids = (all_specs[:6], all_specs[2:])
        else:
            grids = (all_specs[:4], all_specs[4:])

        concurrent_path = tmp_path / "concurrent.sqlite"
        errors: list = []
        threads = [
            threading.Thread(target=self._run_grid, args=(concurrent_path, grid, errors))
            for grid in grids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        serial_path = tmp_path / "serial.sqlite"
        serial = ParallelRunner(
            scale=SCALE, jobs=1, store=RunStore(serial_path, fallback=False)
        )
        serial.run_specs(all_specs)

        assert self._rows(concurrent_path) == self._rows(serial_path)
