"""Tests for the ablation harnesses (tiny scale)."""

import pytest

from repro.experiments import ablations
from repro.experiments.runner import SimulationRunner
from repro.machine.protection import ProtectionLevel


@pytest.fixture(scope="module")
def runner():
    return SimulationRunner(scale=0.1)


class TestErrorClassDecomposition:
    def test_grid_complete(self, runner):
        cells = ablations.error_class_decomposition(
            mtbe=100_000, n_seeds=1, runner=runner
        )
        assert len(cells) == 3 * 3
        classes = {c.error_class for c in cells}
        assert classes == set(ablations.CLASS_MODELS)
        for cell in cells:
            assert cell.mean_quality_db <= 96.0


class TestMaskingSensitivity:
    def test_returns_requested_rates(self, runner):
        results = ablations.masking_sensitivity(
            mtbe=100_000, n_seeds=1, masking_rates=(0.0, 0.9), runner=runner
        )
        assert set(results) == {0.0, 0.9}

    def test_full_masking_equals_error_free(self, runner):
        """With p_masked near 1 and rare errors, quality hits the cap."""
        results = ablations.masking_sensitivity(
            mtbe=1e9, n_seeds=1, masking_rates=(0.99,), runner=runner
        )
        app = runner.app("jpeg")
        assert results[0.99] >= app.baseline_quality() - 0.1


class TestWorksetSizing:
    def test_overhead_monotone_down(self, runner):
        results = ablations.workset_size_overhead(
            workset_sizes=(4, 64, 1024), runner=runner
        )
        assert results[1024] <= results[64] <= results[4]

    def test_ratios_positive(self, runner):
        results = ablations.workset_size_overhead(
            workset_sizes=(16,), runner=runner
        )
        assert results[16] > 0
