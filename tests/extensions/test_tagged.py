"""Tests for the tag-based programming-model bridge (Section 8)."""

import pytest

from repro.extensions.tagged import (
    StepSpec,
    build_tagged_program,
    grouped_reduce_step,
    map_step,
)
from repro.machine.errors import ErrorModel
from repro.machine.protection import ProtectionLevel
from repro.machine.system import run_program


def square_mapper(tag, value):
    return value * value


def make_mapreduce_program(n_keys=32, group=4):
    data = list(range(n_keys * group))
    steps = [
        map_step("mapper", group, square_mapper),
        grouped_reduce_step("reducer", group, lambda tag, vs: sum(vs)),
    ]
    return build_tagged_program(data, steps), data, group


class TestConstruction:
    def test_program_shape(self):
        program, data, group = make_mapreduce_program()
        assert program.n_frames == len(data) // group
        assert len(program.graph.nodes) == 4

    def test_rate_mismatch_rejected(self):
        with pytest.raises(ValueError, match="consumes"):
            build_tagged_program(
                [1, 2],
                [
                    StepSpec("a", 2, 3, lambda t, v: [0, 0, 0]),
                    StepSpec("b", 2, 1, lambda t, v: [0]),
                ],
            )

    def test_ragged_input_rejected(self):
        with pytest.raises(ValueError, match="whole number"):
            build_tagged_program([1, 2, 3], [StepSpec("a", 2, 2, lambda t, v: v)])

    def test_empty_steps_rejected(self):
        with pytest.raises(ValueError):
            build_tagged_program([1], [])

    def test_bad_group_sizes_rejected(self):
        with pytest.raises(ValueError):
            StepSpec("x", 0, 1, lambda t, v: v)

    def test_wrong_output_count_raises_at_runtime(self):
        program = build_tagged_program(
            [1, 2], [StepSpec("bad", 1, 2, lambda t, v: [0])]
        )
        from repro.machine.system import MulticoreSystem

        system = MulticoreSystem.build(program, ProtectionLevel.ERROR_FREE)
        with pytest.raises(ValueError, match="produced"):
            system.run()


class TestSemantics:
    def test_error_free_mapreduce_result(self):
        program, data, group = make_mapreduce_program()
        result = run_program(program, ProtectionLevel.ERROR_FREE)
        expected = [
            sum(v * v for v in data[k * group : (k + 1) * group])
            for k in range(len(data) // group)
        ]
        assert result.outputs["result"] == expected

    def test_step_sees_its_tag(self):
        seen = []

        def spy(tag, values):
            seen.append(tag)
            return values

        program = build_tagged_program(
            list(range(6)), [StepSpec("spy", 2, 2, spy)]
        )
        run_program(program, ProtectionLevel.ERROR_FREE)
        assert seen == [0, 1, 2]

    def test_guarded_error_free_identical(self):
        program, *_ = make_mapreduce_program()
        plain = run_program(program, ProtectionLevel.ERROR_FREE)
        guarded = run_program(program, ProtectionLevel.COMMGUARD, mtbe=None)
        assert plain.outputs == guarded.outputs


class TestRealignmentByTag:
    def test_key_groups_realign_under_control_errors(self):
        """Section 8's claim: a lost/duplicated tag group corrupts that key's
        result only; later keys still reduce correctly under CommGuard."""
        program, data, group = make_mapreduce_program(n_keys=64)
        model = ErrorModel(
            mtbe=6_000, p_masked=0.0, p_data=0.0, p_control=1.0, p_address=0.0
        )
        expected = [
            sum(v * v for v in data[k * group : (k + 1) * group])
            for k in range(64)
        ]
        guarded = run_program(
            program, ProtectionLevel.COMMGUARD, error_model=model, seed=2
        )
        unguarded = run_program(
            program, ProtectionLevel.PPU_RELIABLE_QUEUE, error_model=model, seed=2
        )
        assert len(guarded.outputs["result"]) == 64
        correct_guarded = sum(
            1 for got, want in zip(guarded.outputs["result"], expected) if got == want
        )
        correct_unguarded = sum(
            1
            for got, want in zip(unguarded.outputs["result"], expected)
            if got == want
        )
        assert correct_guarded > correct_unguarded
        assert correct_guarded >= 32  # most keys survive

    def test_progress_under_heavy_errors(self):
        program, *_ = make_mapreduce_program(n_keys=16)
        result = run_program(program, ProtectionLevel.COMMGUARD, mtbe=2_000, seed=1)
        assert not result.hung
        assert len(result.outputs["result"]) == 16
