"""Serializable report API: versioned JSON round trips and the CLI
``sweep --output`` / ``report`` pipeline.

Contracts:

* ``RunReport`` / ``SweepReport`` round-trip losslessly through
  ``to_json``/``from_json`` — records, failures, engine stats, options —
  and a deserialized report aggregates identically to the live one.
* Documents carry ``schema_version``; readers reject versions and kinds
  they cannot interpret, naming both.
* ``repro report FILE`` reproduces the summary ``repro sweep --output
  FILE`` printed, byte for byte.
"""

import functools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.api as api
from repro.api import AppInfo, EngineOptions, RunReport, SweepReport, sweep
from repro.cli import main
from repro.experiments.parallel import FailureRecord, RunSpec, SweepStats
from repro.experiments.runner import RunRecord
from repro.machine.protection import ProtectionLevel

SCALE = 0.05
FAST = EngineOptions(scale=SCALE, jobs=1, cache=False)


class TestRunReportRoundTrip:
    def test_lossless_with_nondefault_fault_model(self):
        report = api.run(
            "fft", "commguard", mtbe="50k", seed=1,
            fault_model="burst:p_cluster=0.7", options=FAST,
        )
        loaded = RunReport.from_json(report.to_json())
        assert loaded.spec == report.spec
        assert loaded.record == report.record
        assert loaded.spec.fault_model == "burst:p_cluster=0.7"
        assert loaded.app == AppInfo(name="fft", metric=report.app.metric)
        assert loaded.quality_db == report.quality_db
        assert loaded.data_loss_ratio == report.data_loss_ratio

    def test_raw_result_is_memory_only(self):
        report = api.run("fft", "commguard", mtbe="50k", options=FAST)
        loaded = RunReport.from_json(report.to_json())
        assert loaded.result is None
        assert loaded.events is None

    def test_deserialized_app_cannot_compute_baselines(self):
        report = api.run("fft", "commguard", mtbe="50k", options=FAST)
        loaded = RunReport.from_json(report.to_json())
        with pytest.raises(ValueError, match="resolve_app"):
            loaded.baseline_quality_db()


class TestSweepReportRoundTrip:
    @pytest.fixture(scope="class")
    def report(self) -> SweepReport:
        return sweep(
            "fft",
            ["ppu_only", "commguard"],
            mtbes=["50k", "100k"],
            seeds=2,
            fault_model="burst",
            options=FAST,
        )

    def test_points_and_stats_lossless(self, report):
        loaded = SweepReport.from_json(report.to_json())
        assert [p.spec for p in loaded.points] == [p.spec for p in report.points]
        assert loaded.records == report.records
        assert loaded.stats == report.stats
        assert loaded.options == report.options

    def test_aggregations_identical(self, report):
        loaded = SweepReport.from_json(report.to_json())
        for level in report.protections:
            assert loaded.quality_stats(protection=level) == report.quality_stats(
                protection=level
            )
            assert loaded.loss_stats(protection=level) == report.loss_stats(
                protection=level
            )
        assert loaded.mtbes == report.mtbes
        assert loaded.protections == report.protections

    def test_failures_round_trip(self, monkeypatch):
        from tests.experiments import _fault_hooks as hooks

        monkeypatch.setattr(
            api,
            "ParallelRunner",
            functools.partial(api.ParallelRunner, fault_hook=hooks.always_fail),
        )
        report = sweep(
            "fft", mtbes="50k", seeds=2,
            options=EngineOptions(scale=SCALE, jobs=1, cache=False,
                                  keep_going=True),
        )
        assert report.failures  # the hook must actually bite
        loaded = SweepReport.from_json(report.to_json())
        assert loaded.failures == report.failures
        assert loaded.stats.failures == report.stats.failures
        failed = [p for p in loaded.points if not p.ok]
        (point,) = failed
        assert point.record is None
        assert point.failure.failure == "exception"
        assert len(loaded.records) == len(loaded) - 1


class TestSchemaGuards:
    def test_unknown_version_rejected(self):
        report = api.run("fft", "commguard", mtbe="50k", options=FAST)
        data = report.to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match=r"schema_version 99.*version 1"):
            RunReport.from_dict(data)

    def test_missing_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version None"):
            SweepReport.from_dict({"kind": "sweep_report"})

    def test_kind_mismatch_rejected(self):
        report = api.run("fft", "commguard", mtbe="50k", options=FAST)
        with pytest.raises(ValueError, match="wrong report kind 'run_report'"):
            SweepReport.from_dict(report.to_dict())

    def test_documents_declare_version_and_kind(self):
        report = api.run("fft", "commguard", mtbe="50k", options=FAST)
        data = json.loads(report.to_json())
        assert data["schema_version"] == api.SCHEMA_VERSION
        assert data["kind"] == "run_report"


def _records(spec_values):
    protection, mtbe, seed, quality, loss, fault_model = spec_values
    spec = RunSpec(
        app="fft", protection=protection, mtbe=mtbe, seed=seed,
        fault_model=fault_model,
    )
    record = RunRecord(
        app="fft", protection=protection, mtbe=mtbe, seed=seed,
        frame_scale=1, quality_db=quality, data_loss_ratio=loss,
        pad_events=3, discard_events=1, padded_items=7, discarded_items=2,
        errors_injected=11, timeouts=0, committed_instructions=123456,
        execution_time=4242, header_load_ratio=0.01, header_store_ratio=0.02,
        subop_ratios={"pushes": 0.5, "pops": 0.5}, hung=False,
    )
    return spec, record


class TestRoundTripProperty:
    """Synthetic reports over arbitrary grid values survive the JSON trip
    bit for bit — no simulation needed, so the space can be sampled wide."""

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.tuples(
                st.sampled_from(list(ProtectionLevel)),
                st.one_of(st.none(), st.floats(1e3, 1e7, allow_nan=False)),
                st.integers(0, 1000),
                st.floats(-200.0, 200.0, allow_nan=False),
                st.floats(0.0, 1.0, allow_nan=False),
                st.sampled_from(["bit_flip", "burst", "sticky:dwell=50000"]),
            ),
            min_size=1,
            max_size=6,
        ),
        with_failure=st.booleans(),
    )
    def test_synthetic_sweep_report(self, values, with_failure):
        points = []
        failures = []
        for index, spec_values in enumerate(values):
            spec, record = _records(spec_values)
            if with_failure and index == 0:
                failure = FailureRecord(
                    index=index, spec=spec, failure="timeout",
                    message="exceeded 30s", attempts=3,
                )
                failures.append(failure)
                points.append(api.SweepPoint(spec=spec, record=None,
                                             failure=failure))
            else:
                points.append(api.SweepPoint(spec=spec, record=record))
        report = SweepReport(
            app=AppInfo(name="fft", metric="snr"),
            points=points,
            options=EngineOptions(scale=0.25, jobs=2, keep_going=True),
            stats=SweepStats(total=len(points), executed=len(points),
                             failed=len(failures), failures=failures),
        )
        loaded = SweepReport.from_json(report.to_json())
        assert loaded == report


class TestCliReportGolden:
    def test_report_reproduces_sweep_summary(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        argv = [
            "sweep", "fft", "--mtbe", "50k", "100k", "--seeds", "2",
            "--scale", str(SCALE), "--no-cache", "--jobs", "1",
            "--output", str(out_file),
        ]
        assert main(argv) == 0
        sweep_out = capsys.readouterr().out
        assert main(["report", str(out_file)]) == 0
        report_out = capsys.readouterr().out
        expected = "".join(
            line for line in sweep_out.splitlines(keepends=True)
            if not line.startswith("report written to")
        )
        assert report_out == expected

    def test_report_rejects_run_documents(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        report = api.run("fft", "commguard", mtbe="50k", options=FAST)
        path.write_text(report.to_json())
        assert main(["report", str(path)]) == 1
        assert "wrong report kind" in capsys.readouterr().err

    def test_missing_file_is_one_actionable_line(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.json")]) == 1
        err = capsys.readouterr().err
        assert "cannot read report" in err


class TestErrorMessageGolden:
    """Parse failures name the offending value and enumerate the valid
    choices/formats — the message alone must be enough to fix the call."""

    def test_mtbe_unparsable_names_value_and_formats(self):
        with pytest.raises(ValueError) as excinfo:
            api.parse_mtbe("fast")
        message = str(excinfo.value)
        assert "'fast'" in message
        assert "512k" in message and "1M" in message

    def test_mtbe_nonpositive_names_value(self):
        with pytest.raises(ValueError) as excinfo:
            api.parse_mtbe("-5k")
        message = str(excinfo.value)
        assert "'-5k'" in message
        assert "positive" in message

    def test_protection_names_value_and_choices(self):
        with pytest.raises(ValueError) as excinfo:
            ProtectionLevel.parse("armored")
        message = str(excinfo.value)
        assert "'armored'" in message
        for choice in ProtectionLevel.choices():
            assert choice in message

    def test_fault_model_malformed_param_shows_format(self):
        from repro.machine.faults import FaultModelSpec

        with pytest.raises(ValueError) as excinfo:
            FaultModelSpec.parse("burst:p_cluster")
        message = str(excinfo.value)
        assert "'p_cluster'" in message
        assert "'burst:p_cluster'" in message
        assert "name:param=val" in message

    def test_fault_model_bad_value_shows_example(self):
        from repro.machine.faults import FaultModelSpec

        with pytest.raises(ValueError) as excinfo:
            FaultModelSpec.parse("sticky:dwell=soon")
        message = str(excinfo.value)
        assert "'soon'" in message
        assert "'dwell'" in message
        assert "expected a number" in message

    def test_unknown_app_names_value_and_choices(self):
        with pytest.raises(ValueError) as excinfo:
            api.resolve_app("quake")
        message = str(excinfo.value)
        assert "'quake'" in message
        assert "fft" in message and "jpeg" in message

    def test_unknown_exec_mode_names_value_and_choices(self):
        from repro.machine.thread import NodeThread

        with pytest.raises(ValueError) as excinfo:
            NodeThread(node=None, comm=None, n_frames=1, firings_per_frame=1,
                       injector=None, ppu=None, exec_mode="turbo")
        message = str(excinfo.value)
        assert "'turbo'" in message
        assert "'fast', 'precise'" in message
